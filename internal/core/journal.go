package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"msql/internal/dol"
	"msql/internal/dolengine"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/mtlog"
	"msql/internal/obs"
	"msql/internal/sqlparser"
	"msql/internal/translate"
	"msql/internal/wire"
)

// ErrDrained reports that script execution stopped at a statement
// boundary because the federation's drain channel fired: the pending
// unit was synchronized first, so no statement was cut off mid-2PC.
var ErrDrained = errors.New("core: script execution drained")

// SetJournal attaches a write-ahead multitransaction journal. Every
// synchronized unit, global DML statement, and multitransaction run
// after the call is journaled: begin record with the plan's task
// topology, prepared participants, synchronization-point decisions
// (durable before the first COMMIT is delivered), terminal outcomes,
// and an end record once fully terminal. Recover replays the journal
// after a crash.
func (f *Federation) SetJournal(j *mtlog.Journal) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.journal = j
}

// Journal returns the attached journal, nil when none is set.
func (f *Federation) Journal() *mtlog.Journal {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.journal
}

// SetDrain installs a drain signal: once ch is closed (or receives),
// ExecScriptContext stops before the next statement, synchronizes the
// pending unit, and returns ErrDrained. A SIGINT handler uses this to
// wind down cleanly instead of dying inside a 2PC window.
func (f *Federation) SetDrain(ch <-chan struct{}) {
	f.drainCh = ch
}

// draining reports whether the drain signal has fired.
func (f *Federation) draining() bool {
	if f.drainCh == nil {
		return false
	}
	select {
	case <-f.drainCh:
		return true
	default:
		return false
	}
}

// SetBreaker installs a circuit-breaker policy for LAM clients the
// federation dials itself (host:port sites resolved lazily). Clients
// registered explicitly are used as-is; wrap them with lam.WithBreaker
// to gate them too.
func (f *Federation) SetBreaker(pol lam.BreakerPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.breakerPol = &pol
}

// Breaker returns the circuit breaker wrapping the client registered
// under key, nil when that client has none.
func (f *Federation) Breaker(key string) *lam.BreakerClient {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b, ok := f.clients[key].(*lam.BreakerClient); ok {
		return b
	}
	return nil
}

// txJournal adapts the journal to the engine's TxLog for one plan run.
// It also collects the remote participants that prepared, so the
// end-of-multitransaction acknowledgment round (lam.Forget) can release
// their tombstones and journal entries once the unit is fully terminal.
type txJournal struct {
	j    *mtlog.Journal
	mtid uint64

	mu       sync.Mutex
	prepared []Participant
}

func (t *txJournal) TaskPrepared(task, addr string, sessionID int64) {
	_ = t.j.Append(&mtlog.Record{
		Type: mtlog.TPrepared, MTID: t.mtid, Task: task, Addr: addr, SessionID: sessionID,
	})
	if addr != "" {
		t.mu.Lock()
		t.prepared = append(t.prepared, Participant{Addr: addr, SessionID: sessionID})
		t.mu.Unlock()
	}
}

func (t *txJournal) participants() []Participant {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Participant(nil), t.prepared...)
}

func (t *txJournal) Decision(commit bool, tasks []string) error {
	return t.j.Append(&mtlog.Record{
		Type: mtlog.TDecision, MTID: t.mtid, Commit: commit, Decided: tasks,
	})
}

func (t *txJournal) TaskOutcome(task string, st dol.TaskStatus) {
	var u uint8
	switch st {
	case dol.StatusCommitted:
		u = mtlog.StatusCommitted
	case dol.StatusAborted:
		u = mtlog.StatusAborted
	default:
		u = mtlog.StatusError
	}
	_ = t.j.Append(&mtlog.Record{Type: mtlog.TOutcome, MTID: t.mtid, Task: task, Status: u})
}

// siteOf resolves a database to the site its LAM is reachable at (the
// AD site, falling back to the service name for in-process clients).
func (f *Federation) siteOf(db string) string {
	svc, err := f.GDD.ServiceOf(db)
	if err != nil {
		return ""
	}
	if e, err := f.AD.Lookup(svc); err == nil && e.Site != "" {
		return e.Site
	}
	return svc
}

// runPlan executes a manipulation plan, journaling it when a journal is
// attached: a begin record with the task topology goes in before the
// engine starts, the engine reports prepared/decision/outcome records
// through a txJournal, and an end record closes the multitransaction
// when nothing is left unresolved.
func (f *Federation) runPlan(ctx context.Context, kind string, prog *dol.Program, meta *translate.Meta) (*dolengine.Outcome, error) {
	sp, ctx := obs.StartSpan(ctx, "execute:"+kind, obs.KindEngine)
	out, err := f.runPlanTraced(ctx, kind, prog, meta)
	sp.EndErr(err)
	return out, err
}

func (f *Federation) runPlanTraced(ctx context.Context, kind string, prog *dol.Program, meta *translate.Meta) (*dolengine.Outcome, error) {
	j := f.Journal()
	if j == nil {
		return f.engine.Run(ctx, prog)
	}
	begin := &mtlog.Record{Type: mtlog.TBegin, MTID: j.NextID(), Kind: kind}
	for _, tm := range meta.Tasks {
		d := mtlog.TaskDecl{
			Name:     tm.Name,
			Entry:    tm.Entry.Name,
			Database: tm.Entry.Database,
			Site:     f.siteOf(tm.Entry.Database),
			Vital:    tm.Entry.Vital,
		}
		if tm.Role == translate.RoleComp {
			d.Comp = true
			d.ForTask = meta.TaskFor(tm.Entry.Name)
			if tm.Stmt != nil {
				d.SQL = sqlparser.Deparse(tm.Stmt)
			}
		}
		begin.Tasks = append(begin.Tasks, d)
	}
	if err := j.Append(begin); err != nil {
		return nil, fmt.Errorf("core: journal begin: %w", err)
	}
	// The multitransaction id rides to participants on every prepare, so
	// their journals correlate with ours, and onto the statement's query
	// inventory record so /debug/queries and the slow-query log carry it.
	ctx = lam.WithMTID(ctx, begin.MTID)
	obs.DefaultQueries.SetMTID(obs.QueryIDFrom(ctx), begin.MTID)
	tj := &txJournal{j: j, mtid: begin.MTID}
	out, err := f.engine.RunLogged(ctx, prog, tj)
	if err == nil && out != nil && len(out.Unresolved) == 0 && !compOwed(meta, out) {
		_ = j.Append(&mtlog.Record{
			Type: mtlog.TEnd, MTID: begin.MTID, State: "status=" + strconv.Itoa(out.Status),
		})
		// END acknowledgment round: every once-prepared participant may now
		// forget the session. Best-effort — a lost ack is backstopped by
		// the participant's tombstone TTL.
		f.ackParticipants(tj.participants())
	}
	return out, err
}

// ackParticipants tells once-prepared participants their
// multitransaction is fully terminal (wire.ReqForget), releasing their
// tombstones and letting their journals compact. Failures are ignored:
// the acknowledgment is an optimization, not a correctness requirement.
func (f *Federation) ackParticipants(parts []Participant) {
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		if p.Addr == "" {
			continue
		}
		key := p.Addr + "#" + strconv.FormatInt(p.SessionID, 10)
		if seen[key] {
			continue
		}
		seen[key] = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = lam.Forget(ctx, p.Addr, p.SessionID)
		cancel()
	}
}

// compOwed reports whether a plan that took the abort path left a
// compensation undone for an already-committed subquery — the
// multitransaction then stays open in the journal so Recover finishes
// the compensation.
func compOwed(meta *translate.Meta, out *dolengine.Outcome) bool {
	if out.Status != translate.StatusAborted {
		return false
	}
	for _, tm := range meta.Tasks {
		if tm.Role != translate.RoleComp {
			continue
		}
		orig := meta.TaskFor(tm.Entry.Name)
		if orig == "" {
			continue
		}
		if out.TaskStatus(orig) == dol.StatusCommitted && out.TaskStatus(tm.Name) != dol.StatusCommitted {
			return true
		}
	}
	return false
}

// recoverFanout bounds how many remote participants or sites a recovery
// sweep contacts concurrently. At fleet scale a serial sweep is
// dominated by the slowest unreachable site's full backoff sequence;
// fanning out keeps the sweep's wall time near one site's worth while
// the jittered RetryPolicy backoff decorrelates the retry instants.
const recoverFanout = 16

// RecoveryReport summarizes one journal recovery pass.
type RecoveryReport struct {
	// Multitransactions counts the journaled multitransactions that were
	// not yet ended and so were examined.
	Multitransactions int
	// Resolved lists in-doubt participants driven to their logged
	// decision (presumed abort when none was logged).
	Resolved []Participant
	// Unreachable lists participants that stayed unreachable; their
	// multitransactions remain open in the journal for a later pass.
	Unreachable []Participant
	// CompRuns names the compensation tasks re-run by this pass.
	CompRuns []string
	// Compacted counts the fully-terminal multitransactions dropped from
	// the journal.
	Compacted int
}

// Recover replays the attached journal after a coordinator restart: it
// drives every prepared participant without a terminal outcome to its
// logged decision (re-attaching through wire.ReqAttach; tasks no commit
// decision covers are presumed aborted), re-runs compensations still
// owed for committed subqueries of aborted units, writes end records
// for multitransactions that become fully terminal, and compacts the
// journal. It is idempotent: a second pass over the same journal finds
// nothing to do.
func (f *Federation) Recover(ctx context.Context) (*RecoveryReport, error) {
	j := f.Journal()
	if j == nil {
		return nil, errors.New("core: Recover requires a journal (SetJournal)")
	}
	states, err := j.States()
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{}
	for _, s := range states {
		if s.Ended {
			continue
		}
		rep.Multitransactions++
		clean := true

		// Prepared participants without a terminal outcome hold locks at
		// their LAM: deliver the logged decision, presumed abort otherwise.
		// Remote resolutions fan out in parallel — one unreachable site's
		// backoff sequence must not serialize the sweep — and the journal
		// appends happen serially afterward, in deterministic order.
		type resolveJob struct {
			task   string
			p      Participant
			commit bool
			st     ldbms.SessionState
			err    error
		}
		var jobs []*resolveJob
		for task, prec := range s.Prepared {
			if _, done := s.Outcomes[task]; done {
				continue
			}
			commit, _ := s.DecisionFor(task)
			if prec.Addr == "" {
				// An in-process session died with the coordinator and was
				// rolled back by its server; record the abort.
				f.appendOutcome(s.MTID, task, mtlog.StatusAborted)
				s.Outcomes[task] = mtlog.StatusAborted
				continue
			}
			p := Participant{Addr: prec.Addr, SessionID: prec.SessionID, Commit: commit}
			if d, ok := s.Decl(task); ok {
				p.Entry, p.Database = d.Entry, d.Database
			}
			jobs = append(jobs, &resolveJob{task: task, p: p, commit: commit})
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, recoverFanout)
		for _, jb := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(jb *resolveJob) {
				defer func() { <-sem; wg.Done() }()
				jb.st, jb.err = f.resolveParticipant(ctx, jb.p.Addr, jb.p.SessionID, jb.commit)
			}(jb)
		}
		wg.Wait()
		for _, jb := range jobs {
			if jb.err != nil {
				clean = false
				rep.Unreachable = append(rep.Unreachable, jb.p)
				continue
			}
			u := mtlog.StatusAborted
			if jb.st == ldbms.StateCommitted {
				u = mtlog.StatusCommitted
			}
			f.appendOutcome(s.MTID, jb.task, u)
			s.Outcomes[jb.task] = u
			rep.Resolved = append(rep.Resolved, jb.p)
		}

		// Compensations owed: the unit went the abort way (no commit
		// decision anywhere in it — a crash before the decision is the
		// presumed-abort case) but an autocommit subquery had already
		// committed and its compensation has not run to completion.
		committedUnit := false
		for _, dr := range s.Decisions {
			if dr.Commit {
				committedUnit = true
			}
		}
		if s.Begin != nil && !committedUnit {
			for _, d := range s.Begin.Tasks {
				if !d.Comp || d.SQL == "" || d.ForTask == "" {
					continue
				}
				if s.Outcomes[d.ForTask] != mtlog.StatusCommitted {
					continue
				}
				if s.Outcomes[d.Name] == mtlog.StatusCommitted {
					continue
				}
				if cerr := f.runComp(ctx, d); cerr != nil {
					clean = false
					continue
				}
				f.appendOutcome(s.MTID, d.Name, mtlog.StatusCommitted)
				s.Outcomes[d.Name] = mtlog.StatusCommitted
				rep.CompRuns = append(rep.CompRuns, d.Name)
			}
		}

		if clean {
			_ = j.Append(&mtlog.Record{Type: mtlog.TEnd, MTID: s.MTID, State: "recovered"})
			// The unit is fully terminal: acknowledge every once-prepared
			// remote participant so tombstones and participant journals
			// can be reclaimed.
			var parts []Participant
			for _, prec := range s.Prepared {
				parts = append(parts, Participant{Addr: prec.Addr, SessionID: prec.SessionID})
			}
			f.ackParticipants(parts)
		}
	}
	dropped, err := j.Compact()
	if err != nil {
		return rep, err
	}
	rep.Compacted = dropped
	return rep, nil
}

// RecoverOrphans completes the termination protocol from the
// participants' side: every incorporated remote site is asked for its
// parked in-doubt sessions (wire.ReqInDoubt), and each one no open
// journal multitransaction covers is rolled back and acknowledged.
//
// Such orphans exist because the coordinator logs a prepared record
// only after the participant's vote returns: a crash landing between
// the vote and the record's group-commit flush leaves the participant
// prepared — holding locks — while the restarted coordinator's journal
// has never heard of the session, so Recover alone cannot reach it.
// The write-ahead rule makes the sweep safe: a commit decision is
// durable only after every prepared record it covers, so a session
// absent from the journal can never have been promised a commit —
// presumed abort is the only correct outcome.
//
// Call RecoverOrphans after Recover and before accepting new sessions:
// a session prepared by a unit in flight right now would be
// indistinguishable from an orphan. The returned participants are the
// sessions swept; sites that stayed unreachable contribute the error
// (the last one), and a later pass retries them.
func (f *Federation) RecoverOrphans(ctx context.Context) ([]Participant, error) {
	j := f.Journal()
	if j == nil {
		return nil, errors.New("core: RecoverOrphans requires a journal (SetJournal)")
	}
	states, err := j.States()
	if err != nil {
		return nil, err
	}
	covered := make(map[string]bool)
	for _, s := range states {
		if s.Ended {
			continue
		}
		for _, prec := range s.Prepared {
			covered[prec.Addr+"#"+strconv.FormatInt(prec.SessionID, 10)] = true
		}
	}
	// Sites are swept in parallel: each goroutine queries one site's
	// parked sessions and resolves its orphans, so a single dark site's
	// retry backoff does not stall the fleet-wide sweep. Duplicate sites
	// (several services incorporated at one address) are visited once.
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, recoverFanout)
		mu      sync.Mutex
		swept   []Participant
		lastErr error
	)
	visited := make(map[string]bool)
	for _, name := range f.AD.Names() {
		e, err := f.AD.Lookup(name)
		if err != nil || e.Site == "" {
			continue // in-process service: its sessions died with us
		}
		if visited[e.Site] {
			continue
		}
		visited[e.Site] = true
		wg.Add(1)
		sem <- struct{}{}
		go func(site string) {
			defer func() { <-sem; wg.Done() }()
			sessions, ierr := lam.InDoubtSessions(ctx, site)
			if ierr != nil {
				mu.Lock()
				lastErr = ierr
				mu.Unlock()
				return
			}
			for _, d := range sessions {
				if covered[site+"#"+strconv.FormatInt(d.SessionID, 10)] {
					continue // an open multitransaction owns it; Recover's job
				}
				if _, rerr := f.resolveParticipant(ctx, site, d.SessionID, false); rerr != nil {
					mu.Lock()
					lastErr = rerr
					mu.Unlock()
					continue
				}
				f.ackParticipants([]Participant{{Addr: site, SessionID: d.SessionID}})
				mu.Lock()
				swept = append(swept, Participant{Addr: site, SessionID: d.SessionID})
				mu.Unlock()
			}
		}(e.Site)
	}
	wg.Wait()
	return swept, lastErr
}

// appendOutcome journals a terminal status reached during recovery.
func (f *Federation) appendOutcome(mtid uint64, task string, st uint8) {
	_ = f.journal.Append(&mtlog.Record{Type: mtlog.TOutcome, MTID: mtid, Task: task, Status: st})
}

// resolveParticipant drives one in-doubt session to its decision under
// the engine's recovery pacing. Transient transport failures — including
// connection refused while the participant restarts — are retried with
// backoff; wire.ErrNoSession is the termination-protocol answer, not a
// failure: a participant with no record of the session either never
// voted or was acknowledged and allowed to forget, so the logged
// decision (presumed abort when none) is the outcome.
func (f *Federation) resolveParticipant(ctx context.Context, addr string, id int64, commit bool) (ldbms.SessionState, error) {
	var last error
	for attempt := 0; attempt <= f.engine.Recovery.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(f.engine.Recovery.Backoff(attempt)):
			}
		}
		cctx, cancel := context.WithTimeout(ctx, f.engine.RecoverTimeout)
		st, err := lam.Resolve(cctx, addr, id, commit)
		cancel()
		if err == nil {
			return st, nil
		}
		if errors.Is(err, wire.ErrNoSession) {
			if commit {
				return ldbms.StateCommitted, nil
			}
			return ldbms.StateAborted, nil
		}
		if !wire.Transient(err) {
			return 0, err
		}
		last = err
	}
	return 0, last
}

// runComp replays one compensating subquery from its journal
// declaration: open a session on the task's site, execute the deparsed
// compensation, commit.
func (f *Federation) runComp(ctx context.Context, d mtlog.TaskDecl) error {
	site := d.Site
	if site == "" {
		site = f.siteOf(d.Database)
	}
	if site == "" {
		return fmt.Errorf("core: no site for compensation %s", d.Name)
	}
	client, err := f.Resolve(site)
	if err != nil {
		return err
	}
	sess, err := client.Open(ctx, d.Database)
	if err != nil {
		return err
	}
	defer sess.Close()
	if _, err := sess.Exec(ctx, d.SQL); err != nil {
		return err
	}
	return sess.Commit(ctx)
}
