package core

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msql/internal/mtlog"
	"msql/internal/obs"
)

// TestFederationExplainPlain renders the decomposition of a fan-out
// multiple query without touching any site: task nodes for both scope
// entries, no execution annotations.
func TestFederationExplainPlain(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis national
LET car.type.status BE cars.cartype.carst
                       vehicle.vty.vstat
EXPLAIN SELECT %code, type, ~rate FROM car WHERE status = 'available'
`)
	if err != nil {
		t.Fatal(err)
	}
	r := results[len(results)-1]
	if r.Kind != KindExplain {
		t.Fatalf("kind = %v, want KindExplain", r.Kind)
	}
	p := r.Plan
	if p == nil {
		t.Fatal("no plan attached")
	}
	if p.Op != "msql" || p.Detail != "fan-out select" {
		t.Fatalf("root = %s %q", p.Op, p.Detail)
	}
	tasks := p.FindAll("task")
	if len(tasks) != 2 {
		t.Fatalf("task nodes = %d, want one per scope entry:\n%s", len(tasks), p.Render())
	}
	names := p.Render()
	for _, db := range []string{"avis", "national"} {
		if !strings.Contains(names, db) {
			t.Fatalf("plan names no task on %s:\n%s", db, names)
		}
	}
	for _, n := range append(tasks, p) {
		if n.Analyzed {
			t.Fatalf("plain EXPLAIN must not execute, node %s is analyzed", n.Op)
		}
		if strings.Contains(n.Detail, "status=") {
			t.Fatalf("plain EXPLAIN carries an execution status: %q", n.Detail)
		}
	}
	if r.DOL == "" {
		t.Fatal("no DOL program text")
	}
}

// TestFederationExplainAnalyze is the acceptance scenario: EXPLAIN
// ANALYZE of a decomposed cross-database join must execute it, return a
// tree whose per-operator rows are consistent with the assembled result,
// and graft each site's local plan under its task node.
func TestFederationExplainAnalyze(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE continental united
EXPLAIN ANALYZE SELECT c.flnu, u.fn
FROM continental.flights c, united.flight u
WHERE c.rate < u.rates
`)
	if err != nil {
		t.Fatal(err)
	}
	r := results[len(results)-1]
	if r.Kind != KindExplain {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Multitable == nil || r.Multitable.TotalRows() != 2 {
		t.Fatalf("ANALYZE did not produce the query's result: %+v", r.Multitable)
	}
	p := r.Plan
	if p == nil || !p.Analyzed {
		t.Fatal("no analyzed plan")
	}
	if p.Detail != "decomposed global query" {
		t.Fatalf("root detail = %q", p.Detail)
	}
	if p.Rows != int64(r.Multitable.TotalRows()) {
		t.Fatalf("root rows = %d, result has %d", p.Rows, r.Multitable.TotalRows())
	}
	if p.TimeNS <= 0 {
		t.Fatal("root has no wall time")
	}
	tasks := p.FindAll("task")
	if len(tasks) < 3 { // two reads + the final assembly task
		t.Fatalf("task nodes = %d:\n%s", len(tasks), p.Render())
	}
	var final *obs.PlanNode
	for _, n := range tasks {
		if !n.Analyzed {
			t.Fatalf("task %q not analyzed", n.Detail)
		}
		if !strings.Contains(n.Detail, "status=committed") {
			t.Fatalf("task %q did not commit", n.Detail)
		}
		if strings.Contains(n.Detail, "final") {
			final = n
		}
	}
	if final == nil {
		t.Fatalf("no final task node:\n%s", p.Render())
	}
	if final.Rows != int64(r.Multitable.TotalRows()) {
		t.Fatalf("final task rows = %d, result has %d", final.Rows, r.Multitable.TotalRows())
	}
	if len(p.FindAll("ship")) < 2 {
		t.Fatalf("expected ship nodes for both read tasks:\n%s", p.Render())
	}
	// Site-local subtrees are grafted under the tasks: the final task
	// joins the two shipped temp tables.
	if final.Find("scan") == nil && final.Find("hash-join") == nil && final.Find("index-probe") == nil {
		t.Fatalf("final task has no grafted local plan:\n%s", p.Render())
	}
	var taskRows int64
	for _, n := range tasks {
		if n != final && strings.Contains(n.Detail, "read") {
			taskRows += n.Rows
		}
	}
	// continental ships 2 flights, united ships 1.
	if taskRows != 3 {
		t.Fatalf("read tasks produced %d rows, want 3:\n%s", taskRows, p.Render())
	}
}

// TestExplainInventoryAndSlowLog checks the statement-level surface: the
// EXPLAIN ANALYZE statement appears in the query inventory behind
// /debug/queries with the same trace id as its result, and the installed
// slow-query log receives a JSON line carrying that trace id and the
// plan digest.
func TestExplainInventoryAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	obs.SetSlowQueryLog(obs.NewSlowQueryLog(&buf, time.Nanosecond))
	defer obs.SetSlowQueryLog(nil)

	f := paperFederation(t, false)
	results, err := f.ExecScriptContext(context.Background(), `
USE continental united
EXPLAIN ANALYZE SELECT c.flnu, u.fn
FROM continental.flights c, united.flight u
WHERE c.rate < u.rates
`)
	if err != nil {
		t.Fatal(err)
	}
	r := results[len(results)-1]
	if r.TraceID == "" {
		t.Fatal("result has no trace id")
	}

	_, recent := obs.DefaultQueries.Snapshot()
	var rec *obs.QueryRecord
	for i := range recent {
		if recent[i].TraceID == r.TraceID && recent[i].Verb == "explain" {
			rec = &recent[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("/debug/queries has no explain record for trace %s", r.TraceID)
	}
	if !rec.Done || rec.Elapsed <= 0 {
		t.Fatalf("record not finished: %+v", rec)
	}
	if rec.Digest == "" || rec.Digest != r.Plan.Digest() {
		t.Fatalf("record digest %q != plan digest %q", rec.Digest, r.Plan.Digest())
	}
	if rec.Plan == nil || rec.Plan.Find("task") == nil {
		t.Fatal("record carries no plan tree")
	}
	if !strings.HasPrefix(rec.SQL, "EXPLAIN ANALYZE SELECT") {
		t.Fatalf("record sql = %q", rec.SQL)
	}

	// Every line in the slow log (threshold 1ns: everything is slow) is
	// valid JSON; one of them is our statement.
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e struct {
			TraceID    string  `json:"trace_id"`
			Verb       string  `json:"verb"`
			SQL        string  `json:"sql"`
			ElapsedMS  float64 `json:"elapsed_ms"`
			PlanDigest string  `json:"plan_digest"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("slow log line is not JSON: %q: %v", line, err)
		}
		if e.TraceID == r.TraceID && e.Verb == "explain" {
			found = true
			if e.ElapsedMS <= 0 {
				t.Fatalf("slow entry has no elapsed time: %q", line)
			}
			if e.PlanDigest != r.Plan.Digest() {
				t.Fatalf("slow entry digest %q != plan digest %q", e.PlanDigest, r.Plan.Digest())
			}
			if !strings.HasPrefix(e.SQL, "EXPLAIN ANALYZE SELECT") {
				t.Fatalf("slow entry sql = %q", e.SQL)
			}
		}
	}
	if !found {
		t.Fatalf("no slow-log entry for trace %s in:\n%s", r.TraceID, buf.String())
	}
}

// TestInventoryMTIDStamped checks that a journaled statement's inventory
// record carries the MTID the coordinator journal assigned, correlating
// /debug/queries with the recovery journal and the slow-query log.
func TestInventoryMTIDStamped(t *testing.T) {
	f := paperFederation(t, false)
	j, err := mtlog.Open(filepath.Join(t.TempDir(), "mt.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	f.SetJournal(j)
	_, err = f.ExecScriptContext(context.Background(), `
USE avis national
INSERT INTO avis.cars (code, cartype)
SELECT v.vcode, v.vty FROM national.vehicle v WHERE v.vstat = 'FREE'
`)
	if err != nil {
		t.Fatal(err)
	}
	_, recent := obs.DefaultQueries.Snapshot()
	for _, rec := range recent {
		if rec.Verb == "insert" && strings.Contains(rec.SQL, "avis.cars") {
			if rec.MTID == 0 {
				t.Fatalf("journaled insert has no MTID: %+v", rec)
			}
			return
		}
	}
	t.Fatal("no inventory record for the global insert")
}

// TestInventorySyncRecord checks that the end-of-script synchronization
// of queued DML appears in the inventory as its own "sync" entry with
// the journal's MTID.
func TestInventorySyncRecord(t *testing.T) {
	f := paperFederation(t, false)
	j, err := mtlog.Open(filepath.Join(t.TempDir(), "mt.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	f.SetJournal(j)
	_, err = f.ExecScriptContext(context.Background(), `
USE continental VITAL
UPDATE flights SET rate = rate + 1 WHERE flnu = 100
`)
	if err != nil {
		t.Fatal(err)
	}
	_, recent := obs.DefaultQueries.Snapshot()
	for _, rec := range recent {
		if rec.Verb == "sync" && strings.Contains(rec.SQL, "SYNCHRONIZE") {
			if !rec.Done {
				t.Fatalf("sync record not finished: %+v", rec)
			}
			if rec.MTID == 0 {
				t.Fatalf("sync record has no MTID: %+v", rec)
			}
			return
		}
	}
	t.Fatal("no sync record in the inventory")
}
