package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/netfault"
)

// severClient wraps a real TCP LAM client so a test can deterministically
// kill the network in the paper's worst window: after PREPARE succeeds and
// before the coordinator's COMMIT arrives. When armed, the wrapped
// session's Prepare severs the proxy right after it returns success —
// client-side, so there is no timing race with the server's reply.
type severClient struct {
	lam.Client
	proxy  *netfault.Proxy
	armed  atomic.Bool
	refuse atomic.Bool // also refuse reconnects after the sever (permanent outage)
}

func (c *severClient) Open(ctx context.Context, db string) (lam.Session, error) {
	s, err := c.Client.Open(ctx, db)
	if err != nil {
		return nil, err
	}
	return &severSession{Session: s, c: c}, nil
}

type severSession struct {
	lam.Session
	c *severClient
}

func (s *severSession) Prepare(ctx context.Context) error {
	err := s.Session.Prepare(ctx)
	if err == nil && s.c.armed.Load() {
		s.c.proxy.Sever()
		if s.c.refuse.Load() {
			s.c.proxy.SetRefuse(true)
		}
	}
	return err
}

// RecoveryInfo delegates so the engine's in-doubt recovery still sees the
// real transport session behind the wrapper.
func (s *severSession) RecoveryInfo() (string, int64) {
	return s.Session.(lam.Recoverable).RecoveryInfo()
}

// faultFederation builds a two-site federation where united sits behind a
// netfault proxy with a severing wrapper client. Recovery is tightened so
// the permanent-outage path stays fast.
func faultFederation(t *testing.T) (*Federation, map[string]*ldbms.Server, *severClient, *netfault.Proxy) {
	t.Helper()
	servers := map[string]*ldbms.Server{}
	fed := New()
	fed.SetRecovery(lam.RetryPolicy{Attempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}, time.Second)

	specs := []struct {
		svc, db string
		ddl     []string
	}{
		{"svc_cont", "continental", []string{
			"CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), rate FLOAT)",
			"INSERT INTO flights VALUES (100, 'Houston', 'San Antonio', 100.0)",
		}},
		{"svc_unit", "united", []string{
			"CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)",
			"INSERT INTO flight VALUES (300, 'Houston', 'San Antonio', 120.0)",
		}},
	}
	var sites []string
	var proxy *netfault.Proxy
	var sc *severClient
	for _, sp := range specs {
		srv := ldbms.NewServer(sp.svc, ldbms.ProfileOracleLike(), 1)
		if err := srv.CreateDatabase(sp.db); err != nil {
			t.Fatal(err)
		}
		sess, err := srv.OpenSession(sp.db)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range sp.ddl {
			if _, err := sess.Exec(q); err != nil {
				t.Fatal(err)
			}
		}
		sess.Commit()
		sess.Close()
		ts, err := lam.Serve("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ts.Close() })
		servers[sp.db] = srv

		site := ts.Addr()
		if sp.db == "united" {
			proxy, err = netfault.New(ts.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { proxy.Close() })
			site = proxy.Addr()
			inner, err := lam.DialWith(context.Background(), site, lam.DialOptions{
				CallTimeout: 2 * time.Second,
				Retry:       lam.RetryPolicy{Attempts: 1, BaseDelay: 5 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			sc = &severClient{Client: inner, proxy: proxy}
			fed.RegisterClient(site, sc)
		}
		sites = append(sites, site)
	}
	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_cont SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, sites[0], sites[1])
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	return fed, servers, sc, proxy
}

const vitalUpdate = `
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`

func unitedRate(t *testing.T, srv *ldbms.Server) float64 {
	t.Helper()
	sess, err := srv.OpenSession("united")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec("SELECT rates FROM flight WHERE fn = 300")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}

func TestSeverAfterPrepareRecoversToSuccess(t *testing.T) {
	fed, servers, sc, _ := faultFederation(t)
	sc.armed.Store(true)

	// The connection to united dies between its PREPARE and the COMMIT
	// decision. The coordinator must reconnect, re-bind the parked
	// prepared session, and drive it to commit — converging on Success,
	// never silently Incorrect.
	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateSuccess {
		t.Fatalf("state = %s, want success after in-doubt recovery (tasks %v, unresolved %+v)",
			sync.State, sync.TaskStates, sync.Unresolved)
	}
	if len(sync.Unresolved) != 0 {
		t.Fatalf("unresolved = %+v", sync.Unresolved)
	}
	// Both databases really committed the 10% raise.
	if f := unitedRate(t, servers["united"]); f < 131.9 || f > 132.1 {
		t.Fatalf("united rate = %v, want 132 (committed via recovery)", f)
	}
	sess, _ := servers["continental"].OpenSession("continental")
	defer sess.Close()
	res, _ := sess.Exec("SELECT rate FROM flights WHERE flnu = 100")
	if f, _ := res.Rows[0][0].AsFloat(); f < 109.9 || f > 110.1 {
		t.Fatalf("continental rate = %v, want 110", f)
	}
}

func TestPermanentOutageReportsUnresolvedParticipant(t *testing.T) {
	fed, servers, sc, proxy := faultFederation(t)
	sc.armed.Store(true)
	sc.refuse.Store(true) // the sever will be permanent: no reconnects

	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	// With a vital participant stuck in doubt the outcome is neither
	// Success nor Incorrect — it must be reported as Unresolved, with
	// enough information to resolve it later.
	if sync.State != StateUnresolved {
		t.Fatalf("state = %s, want unresolved (tasks %v)", sync.State, sync.TaskStates)
	}
	if len(sync.Unresolved) != 1 {
		t.Fatalf("unresolved = %+v, want exactly the united participant", sync.Unresolved)
	}
	p := sync.Unresolved[0]
	if p.Entry != "united" || p.Addr != proxy.Addr() || p.SessionID == 0 || !p.Commit {
		t.Fatalf("participant = %+v", p)
	}

	// The site comes back: the operator (or a later pass) delivers the
	// recorded decision with lam.Resolve and the update lands.
	proxy.SetRefuse(false)
	st, err := lam.Resolve(context.Background(), p.Addr, p.SessionID, p.Commit)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("resolved state = %v", st)
	}
	if f := unitedRate(t, servers["united"]); f < 131.9 || f > 132.1 {
		t.Fatalf("united rate after manual resolve = %v, want 132", f)
	}
}

func TestFederationCallTimeoutBoundsBlackholedSite(t *testing.T) {
	servers := map[string]*ldbms.Server{}
	fed := New()
	const timeout = 200 * time.Millisecond
	fed.CallTimeout = timeout

	srv := ldbms.NewServer("svc_unit", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("united"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("united")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("CREATE TABLE flight (fn INTEGER, rates FLOAT)"); err != nil {
		t.Fatal(err)
	}
	sess.Commit()
	sess.Close()
	servers["united"] = srv
	ts, err := lam.Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	proxy, err := netfault.New(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, proxy.Addr())
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}

	proxy.SetBlackhole(true)
	start := time.Now()
	_, err = fed.ExecScript("USE united\nSELECT fn FROM flight")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a black-holed site should fail")
	}
	// Every LAM call is bounded by CallTimeout; with the default 2-retry
	// control policy the whole query fails well inside a few timeouts
	// instead of hanging until TCP gives up.
	if elapsed > 10*timeout {
		t.Fatalf("elapsed = %v with CallTimeout %v — deadline not honored", elapsed, timeout)
	}
}

func TestExecScriptContextCancellation(t *testing.T) {
	fed, _, _, proxy := faultFederation(t)
	proxy.SetDelay(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 75*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fed.ExecScriptContext(ctx, "USE united\nSELECT fn FROM flight")
	if err == nil {
		t.Fatal("script should fail at the context deadline")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("elapsed = %v, cancellation not honored", elapsed)
	}
}
