package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"msql/internal/admit"
	"msql/internal/mtlog"
)

// TestSessionStateIsolation verifies that two sessions on one federation
// carry independent scope, LET, and unit state: what one accumulates or
// scopes never leaks into the other.
func TestSessionStateIsolation(t *testing.T) {
	f := paperFederation(t, false)
	a := f.NewSession("a")
	b := f.NewSession("b")

	if _, err := a.ExecScript(`USE delta;`); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecScript(`USE united VITAL avis;`); err != nil {
		t.Fatal(err)
	}
	as, bs := a.Scope(), b.Scope()
	if len(as) != 1 || as[0].Database != "delta" {
		t.Fatalf("session a scope = %+v", as)
	}
	if len(bs) != 2 || bs[0].Database != "united" || !bs[0].Vital {
		t.Fatalf("session b scope = %+v", bs)
	}
	// The legacy default-session API must be yet another independent
	// session, not an alias of a or b.
	if got := f.Scope(); len(got) != 0 {
		t.Fatalf("default session scope = %+v, want empty", got)
	}
}

// TestConcurrentSessionsCommit runs parallel sessions through full
// commit-mode units against the shared engine, journal, and stores, and
// checks every unit lands in a clean terminal state with its rows
// actually visible.
func TestConcurrentSessionsCommit(t *testing.T) {
	f := paperFederation(t, false)
	j, err := mtlog.Open(filepath.Join(t.TempDir(), "mt.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetGroupCommit(time.Millisecond)
	f.SetJournal(j)

	const sessions = 8
	const opsPer = 3
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := f.NewSession(fmt.Sprintf("tenant%d", i%2))
			for n := 0; n < opsPer; n++ {
				fn := 9000 + i*100 + n
				script := fmt.Sprintf(`USE delta VITAL united VITAL;
INSERT INTO delta.flight VALUES (%d, 'Houston', 'Austin', '07:00', '08:00', 'wed', 55.0);
INSERT INTO united.flight VALUES (%d, 'Houston', 'Austin', '07:30', '08:30', 'wed', 56.0);
COMMIT;`, fn, fn)
				results, err := s.ExecScriptContext(context.Background(), script)
				if err != nil {
					errCh <- fmt.Errorf("session %d op %d: %w", i, n, err)
					return
				}
				for _, r := range results {
					if r.Kind == KindSync && r.State != StateSuccess {
						errCh <- fmt.Errorf("session %d op %d: state %v", i, n, r.State)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every row from every session must be present on both sites.
	rate := localRate(t, f, "svc_delta", "delta",
		`SELECT COUNT(*) FROM flight WHERE fnu >= 9000`)
	if int(rate) != sessions*opsPer {
		t.Fatalf("delta rows = %v, want %d", rate, sessions*opsPer)
	}
	// The shared journal must have batched at least once and hold no
	// un-ended multitransactions.
	states, err := j.States()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if !st.Ended {
			t.Fatalf("mt%d not ended after clean concurrent run", st.MTID)
		}
	}
	synced, fsyncs := j.SyncStats()
	if synced == 0 {
		t.Fatal("no sync records journaled")
	}
	if fsyncs > synced {
		t.Fatalf("fsyncs %d > sync records %d", fsyncs, synced)
	}
}

// TestSessionAdmissionOverload saturates a tiny admission gate and
// checks the surplus statements shed with ErrOverload instead of
// queueing without bound.
func TestSessionAdmissionOverload(t *testing.T) {
	f := paperFederation(t, false)
	ctrl := admit.New(admit.Config{
		MaxConcurrent:     1,
		MaxQueuePerTenant: 1,
		MaxWait:           50 * time.Millisecond,
	})
	f.SetAdmission(ctrl)

	// Occupy the only execution slot so every session hits the queue.
	hold, err := ctrl.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := f.NewSession("loud")
			_, err := s.ExecScript(`USE delta; SELECT * FROM delta.flight;`)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, admit.ErrOverload):
				shed++
			case err != nil:
				t.Errorf("session %d: unexpected error %v", i, err)
			default:
				t.Errorf("session %d: got through a fully held gate", i)
			}
		}(i)
	}
	wg.Wait()
	if shed != sessions {
		t.Fatalf("shed = %d, want %d (all sessions, via queue-full or timeout)", shed, sessions)
	}
	if _, queued := ctrl.Stats(); queued != 0 {
		t.Fatalf("queue not drained: %d", queued)
	}

	// Releasing the slot restores service.
	hold()
	s := f.NewSession("loud")
	if _, err := s.ExecScript(`USE delta; SELECT * FROM delta.flight;`); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestStmtTimeoutWired checks the federation's StmtTimeout reaches the
// statement's execution context: with an unmeetable budget the LAM call
// fails on the expired deadline instead of executing. (Interruption of
// calls blocked mid-wire is covered by the lam and mdserver tests — the
// in-process transport only checks the deadline at call entry.)
func TestStmtTimeoutWired(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript(`USE delta;`); err != nil {
		t.Fatal(err)
	}
	f.StmtTimeout = time.Nanosecond
	start := time.Now()
	_, err := f.ExecScript(`SELECT * FROM delta.flight;`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("statement took %v despite 1ns timeout", d)
	}
	f.StmtTimeout = 0
	if _, err := f.ExecScript(`SELECT * FROM delta.flight;`); err != nil {
		t.Fatalf("after clearing timeout: %v", err)
	}
}
