package core

import (
	"fmt"
	"testing"

	"msql/internal/dol"
	"msql/internal/ldbms"
)

// TestVitalInvariantUnderRandomFaults checks the central guarantee of the
// paper's vital-set machinery: for every combination of exec/prepare
// faults across the three airline databases, the global outcome is
// success or aborted — never incorrect — and the two vital databases
// always agree. Only commit-phase faults (the residual 2PC window,
// exercised separately) may produce the incorrect state.
func TestVitalInvariantUnderRandomFaults(t *testing.T) {
	type faultSpec struct {
		svc, db string
		op      ldbms.FaultOp
	}
	// All single and double fault combinations at exec and prepare time.
	var candidates []faultSpec
	for _, target := range []struct{ svc, db string }{
		{"svc_cont", "continental"}, {"svc_delta", "delta"}, {"svc_unit", "united"},
	} {
		candidates = append(candidates,
			faultSpec{target.svc, target.db, ldbms.FaultExec},
			faultSpec{target.svc, target.db, ldbms.FaultPrepare},
		)
	}
	var combos [][]faultSpec
	combos = append(combos, nil)
	for i := range candidates {
		combos = append(combos, []faultSpec{candidates[i]})
		for j := i + 1; j < len(candidates); j++ {
			combos = append(combos, []faultSpec{candidates[i], candidates[j]})
		}
	}

	for ci, combo := range combos {
		name := fmt.Sprintf("combo%d", ci)
		t.Run(name, func(t *testing.T) {
			f := paperFederation(t, false)
			for _, fs := range combo {
				f.Server(fs.svc).Faults().Add(ldbms.FaultRule{Op: fs.op, Database: fs.db})
			}
			results, err := f.ExecScript(`
USE continental VITAL delta united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
			if err != nil {
				t.Fatalf("combo %v: %v", combo, err)
			}
			sync := results[len(results)-1]
			if sync.State == StateIncorrect {
				t.Fatalf("combo %v produced the incorrect state: %+v", combo, sync.TaskStates)
			}
			cont, unit := sync.TaskStates["continental"], sync.TaskStates["united"]
			contCommitted := cont == dol.StatusCommitted
			unitCommitted := unit == dol.StatusCommitted
			if contCommitted != unitCommitted {
				t.Fatalf("combo %v: vital set disagrees: continental=%s united=%s", combo, cont, unit)
			}
			// The local data must agree with the reported state.
			rate := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100")
			if contCommitted && (rate < 109.9 || rate > 110.1) {
				t.Fatalf("combo %v: committed but rate = %v", combo, rate)
			}
			if !contCommitted && rate != 100 {
				t.Fatalf("combo %v: aborted but rate = %v", combo, rate)
			}
		})
	}
}

// TestCompensationInvariantUnderFaults: with continental on an
// autocommit-only service, for every exec-time fault combination either
// both logical effects stand or neither does (after compensation).
func TestCompensationInvariantUnderFaults(t *testing.T) {
	combos := [][]string{
		nil,
		{"continental"},
		{"united"},
		{"continental", "united"},
	}
	for ci, combo := range combos {
		t.Run(fmt.Sprintf("combo%d", ci), func(t *testing.T) {
			f := paperFederation(t, true)
			for _, db := range combo {
				svc := "svc_cont"
				if db == "united" {
					svc = "svc_unit"
				}
				f.Server(svc).Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: db})
			}
			results, err := f.ExecScript(e3Script)
			if err != nil {
				t.Fatal(err)
			}
			sync := results[len(results)-1]
			contRate := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100")
			unitRate := localRate(t, f, "svc_unit", "united", "SELECT rates FROM flight WHERE fn = 300")
			contRaised := contRate > 105
			unitRaised := unitRate > 125
			if contRaised != unitRaised {
				t.Fatalf("combo %v: effects diverge: cont=%v unit=%v (state %s)", combo, contRate, unitRate, sync.State)
			}
			if sync.State == StateSuccess && !contRaised {
				t.Fatalf("combo %v: success without effect", combo)
			}
			if sync.State == StateAborted && contRaised {
				t.Fatalf("combo %v: aborted but effects stand", combo)
			}
		})
	}
}

// TestMultiTxNeverDoubleBooks: under every single-database fault, the
// travel-agent multitransaction books at most one seat and one car, and
// books both or neither.
func TestMultiTxNeverDoubleBooks(t *testing.T) {
	targets := []struct{ svc, db string }{
		{"", ""}, // no fault
		{"svc_cont", "continental"},
		{"svc_delta", "delta"},
		{"svc_avis", "avis"},
		{"svc_natl", "national"},
	}
	for _, target := range targets {
		name := target.db
		if name == "" {
			name = "healthy"
		}
		t.Run(name, func(t *testing.T) {
			f := paperFederation(t, false)
			if target.svc != "" {
				f.Server(target.svc).Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: target.db})
			}
			results, err := f.ExecScript(e4Script)
			if err != nil {
				t.Fatal(err)
			}
			mtx := results[len(results)-1]

			count := func(svc, db, sql string) int64 {
				sess, err := f.Server(svc).OpenSession(db)
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				res, err := sess.Exec(sql)
				if err != nil {
					t.Fatal(err)
				}
				n, _ := res.Rows[0][0].AsInt()
				return n
			}
			seats := count("svc_cont", "continental", "SELECT COUNT(seatnu) FROM f838 WHERE clientname = 'wenders'") +
				count("svc_delta", "delta", "SELECT COUNT(snu) FROM fnu747 WHERE passname = 'wenders'")
			cars := count("svc_avis", "avis", "SELECT COUNT(code) FROM cars WHERE client = 'wenders'") +
				count("svc_natl", "national", "SELECT COUNT(vcode) FROM vehicle WHERE client = 'wenders'")
			if seats > 1 || cars > 1 {
				t.Fatalf("double booking: %d seats, %d cars", seats, cars)
			}
			if (seats == 1) != (cars == 1) {
				t.Fatalf("partial trip: %d seats, %d cars", seats, cars)
			}
			if mtx.AchievedState != nil && seats != 1 {
				t.Fatalf("achieved state %v but %d seats", mtx.AchievedState, seats)
			}
			if mtx.AchievedState == nil && seats != 0 {
				t.Fatalf("failed multitransaction left %d seats", seats)
			}
		})
	}
}
