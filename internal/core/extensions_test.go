package core

import (
	"strings"
	"testing"

	"msql/internal/ldbms"
)

// --- Multidatabases (virtual databases, §2) ---

func TestMultidatabaseInUse(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
CREATE MULTIDATABASE airlines (continental, delta, united);
USE airlines
SELECT day FROM flight%
`)
	if err != nil {
		t.Fatal(err)
	}
	var sel *Result
	for _, r := range results {
		if r.Kind == KindSelect {
			sel = r
		}
	}
	if sel == nil || len(sel.Multitable.Tables) != 3 {
		t.Fatalf("tables = %+v", sel.Multitable)
	}
}

func TestMultidatabaseVitalPropagates(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript("CREATE MULTIDATABASE airlines (continental, united)"); err != nil {
		t.Fatal(err)
	}
	// A failure on united must drag continental down: VITAL applied to
	// every member.
	f.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})
	results, err := f.ExecScript(`
USE airlines VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateAborted {
		t.Fatalf("state = %s", sync.State)
	}
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got != 100 {
		t.Fatalf("rate = %v", got)
	}
}

func TestMultidatabaseErrors(t *testing.T) {
	f := paperFederation(t, false)
	// Unknown member.
	if _, err := f.ExecScript("CREATE MULTIDATABASE m (nodb)"); err == nil {
		t.Fatal("unknown member should fail")
	}
	// Name collision with a database.
	if _, err := f.ExecScript("CREATE MULTIDATABASE avis (national)"); err == nil {
		t.Fatal("name collision should fail")
	}
	// Alias on a multidatabase.
	if _, err := f.ExecScript("CREATE MULTIDATABASE m2 (avis, national)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecScript("USE (m2 x)"); err == nil {
		t.Fatal("alias on multidatabase should fail")
	}
	// Drop works; unknown drop fails.
	if _, err := f.ExecScript("DROP MULTIDATABASE m2"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecScript("DROP MULTIDATABASE m2"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestMultidatabaseMixedScope(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript("CREATE MULTIDATABASE rentals (avis, national)"); err != nil {
		t.Fatal(err)
	}
	results, err := f.ExecScript(`
USE rentals continental
SELECT day FROM flight%
`)
	if err != nil {
		t.Fatal(err)
	}
	sel := results[len(results)-1]
	// flight% matches only continental; avis/national are skipped.
	if len(sel.Multitable.Tables) != 1 || len(sel.Skipped) != 2 {
		t.Fatalf("tables = %d skipped = %d", len(sel.Multitable.Tables), len(sel.Skipped))
	}
}

func TestUseCurrentDeduplicatesScope(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis
USE CURRENT avis national
SELECT %code FROM car%
`)
	// The duplicate avis entry must collapse: one table for avis, one for
	// national (or a skip), never two avis subqueries.
	if err != nil {
		t.Fatal(err)
	}
	sel := results[len(results)-1]
	avisCount := 0
	for _, tab := range sel.Multitable.Tables {
		if tab.Database == "avis" {
			avisCount++
		}
	}
	if avisCount != 1 {
		t.Fatalf("avis appears %d times", avisCount)
	}
	// A later VITAL strengthens the earlier entry.
	f2 := paperFederation(t, false)
	if _, err := f2.ExecScript("USE avis\nUSE CURRENT avis VITAL"); err != nil {
		t.Fatal(err)
	}
	scope := f2.Scope()
	if len(scope) != 1 || !scope[0].Vital {
		t.Fatalf("scope = %+v", scope)
	}
}

// --- Multidatabase views (§2) ---

func TestMultiviewDefineAndQuery(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
CREATE MULTIVIEW available_cars AS
SELECT %code, type, ~rate FROM car WHERE status = 'available';
USE continental
SELECT * FROM available_cars
`)
	if err != nil {
		t.Fatal(err)
	}
	var sel *Result
	for _, r := range results {
		if r.Kind == KindSelect {
			sel = r
		}
	}
	if sel == nil || len(sel.Multitable.Tables) != 2 {
		t.Fatalf("multiview result = %+v", sel)
	}
	// The view captured avis+national even though the current scope is
	// continental.
	names := []string{sel.Multitable.Tables[0].Database, sel.Multitable.Tables[1].Database}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "avis") || !strings.Contains(joined, "national") {
		t.Fatalf("origins = %v", names)
	}
}

func TestMultiviewSeesCurrentData(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript(`
USE avis national
LET car.status BE cars.carst vehicle.vstat
CREATE MULTIVIEW avail AS SELECT %code FROM car% WHERE status = 'available'
`); err != nil {
		t.Fatal(err)
	}
	before, err := f.ExecScript("SELECT * FROM avail")
	if err != nil {
		t.Fatal(err)
	}
	nBefore := before[len(before)-1].Multitable.TotalRows()
	// Rent out the available avis car; the view must reflect it.
	if _, err := f.ExecScript("USE avis\nUPDATE cars SET carst = 'rented' WHERE code = 1"); err != nil {
		t.Fatal(err)
	}
	after, err := f.ExecScript("USE avis national\nSELECT * FROM avail")
	if err != nil {
		t.Fatal(err)
	}
	nAfter := after[len(after)-1].Multitable.TotalRows()
	if nAfter != nBefore-1 {
		t.Fatalf("rows before=%d after=%d", nBefore, nAfter)
	}
}

func TestMultiviewErrors(t *testing.T) {
	f := paperFederation(t, false)
	// Needs scope.
	if _, err := f.ExecScript("CREATE MULTIVIEW v AS SELECT code FROM cars"); err == nil {
		t.Fatal("multiview without scope should fail")
	}
	if _, err := f.ExecScript("DROP MULTIVIEW v"); err == nil {
		t.Fatal("drop of unknown multiview should fail")
	}
	if _, err := f.ExecScript("USE avis\nCREATE MULTIVIEW v AS SELECT code FROM cars"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecScript("DROP MULTIVIEW v"); err != nil {
		t.Fatal(err)
	}
}

// --- Dynamic value transformation (§2) ---

func TestTransformationVariableEndToEnd(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis national
LET car.code.weekly BE cars.code.(rate * 7)
                       vehicle.vcode.(0 - 1)
SELECT code, weekly FROM car%
`)
	if err != nil {
		t.Fatal(err)
	}
	var sel *Result
	for _, r := range results {
		if r.Kind == KindSelect {
			sel = r
		}
	}
	// car% matches only avis' cars; weekly = rate * 7.
	if sel == nil || len(sel.Multitable.Tables) != 1 {
		t.Fatalf("result = %+v", sel)
	}
	rows := sel.Multitable.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		code, _ := r[0].AsInt()
		weekly, _ := r[1].AsFloat()
		if code == 1 && (weekly < 346.4 || weekly > 346.6) { // 49.5 * 7
			t.Fatalf("weekly = %v", weekly)
		}
	}
}

// --- COMMIT EFFECTIVE (extension) ---

func TestCommitEffectiveRejectsVacuousReservation(t *testing.T) {
	// Take the last FREE national vehicle beforehand: the reservation
	// UPDATE then matches zero rows and commits vacuously.
	prep := `
USE national
UPDATE vehicle SET vstat = 'TAKEN' WHERE vstat = 'FREE'
`
	mtx := func(effective string) string {
		return `
BEGIN MULTITRANSACTION
USE national
UPDATE vehicle SET client = 'wenders'
WHERE vcode = (SELECT MIN(vcode) FROM vehicle WHERE vstat = 'FREE')
COMMIT ` + effective + `
national
END MULTITRANSACTION`
	}

	// Without EFFECTIVE: the paper's semantics — the vacuous commit
	// satisfies the state.
	f1 := paperFederation(t, false)
	if _, err := f1.ExecScript(prep); err != nil {
		t.Fatal(err)
	}
	results, err := f1.ExecScript(mtx(""))
	if err != nil {
		t.Fatal(err)
	}
	if results[len(results)-1].AchievedState == nil {
		t.Fatal("plain COMMIT should accept the vacuous reservation")
	}

	// With EFFECTIVE: zero affected rows fail the state; the
	// multitransaction aborts.
	f2 := paperFederation(t, false)
	if _, err := f2.ExecScript(prep); err != nil {
		t.Fatal(err)
	}
	results, err = f2.ExecScript(mtx("EFFECTIVE"))
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if last.AchievedState != nil {
		t.Fatalf("EFFECTIVE accepted a vacuous reservation: %v", last.AchievedState)
	}
	if last.Status != 1 { // one state -> fail status is 1
		t.Fatalf("status = %d", last.Status)
	}
}

// --- Interdatabase triggers (§2) ---

func TestTriggerFiresAcrossDatabases(t *testing.T) {
	f := paperFederation(t, false)
	// Audit table at avis; trigger mirrors delta updates into it.
	script := `
USE avis
CREATE TABLE audit (what CHAR(40));
CREATE TRIGGER mirror ON delta AFTER UPDATE EXECUTE
INSERT INTO audit (what) VALUES ('delta updated');
USE delta
UPDATE flight SET rate = rate + 1 WHERE fnu = 200
`
	results, err := f.ExecScript(script)
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	for _, r := range results {
		fired = append(fired, r.TriggersFired...)
	}
	if len(fired) != 1 || fired[0] != "mirror" {
		t.Fatalf("fired = %v", fired)
	}
	sess, _ := f.Server("svc_avis").OpenSession("avis")
	defer sess.Close()
	res, err := sess.Exec("SELECT COUNT(what) FROM audit")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("audit rows = %v", res.Rows[0][0])
	}
}

func TestTriggerDoesNotFireOnAbort(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript(`
USE avis
CREATE TABLE audit (what CHAR(40));
CREATE TRIGGER mirror ON united AFTER UPDATE EXECUTE
INSERT INTO audit (what) VALUES ('united updated')
`); err != nil {
		t.Fatal(err)
	}
	f.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})
	results, err := f.ExecScript(`
USE united VITAL
UPDATE flight SET rates = rates + 1 WHERE fn = 300
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.TriggersFired) != 0 {
			t.Fatalf("trigger fired on aborted update: %v", r.TriggersFired)
		}
	}
	sess, _ := f.Server("svc_avis").OpenSession("avis")
	defer sess.Close()
	res, _ := sess.Exec("SELECT COUNT(what) FROM audit")
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("audit rows = %v", res.Rows[0][0])
	}
}

func TestTriggerEventFilter(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript(`
USE avis
CREATE TABLE audit (what CHAR(40));
CREATE TRIGGER ondelete ON avis AFTER DELETE EXECUTE
INSERT INTO audit (what) VALUES ('deleted')
`); err != nil {
		t.Fatal(err)
	}
	// An UPDATE must not fire the DELETE trigger.
	results, err := f.ExecScript("USE avis\nUPDATE cars SET rate = rate + 1 WHERE code = 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.TriggersFired) != 0 {
			t.Fatalf("fired = %v", r.TriggersFired)
		}
	}
	// A DELETE does.
	results, err = f.ExecScript("USE avis\nDELETE FROM cars WHERE code = 2")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, r := range results {
		fired += len(r.TriggersFired)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestTriggerNoRecursion(t *testing.T) {
	f := paperFederation(t, false)
	// A trigger on avis INSERT that itself inserts into avis: must fire
	// once, not loop.
	if _, err := f.ExecScript(`
USE avis
CREATE TABLE audit (what CHAR(40));
CREATE TRIGGER selfloop ON avis AFTER INSERT EXECUTE
INSERT INTO audit (what) VALUES ('ins')
`); err != nil {
		t.Fatal(err)
	}
	results, err := f.ExecScript("USE avis\nINSERT INTO cars (code, cartype) VALUES (99, 'test')")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, r := range results {
		fired += len(r.TriggersFired)
	}
	if fired != 1 {
		t.Fatalf("fired = %d (recursion guard broken?)", fired)
	}
	sess, _ := f.Server("svc_avis").OpenSession("avis")
	defer sess.Close()
	res, _ := sess.Exec("SELECT COUNT(what) FROM audit")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("audit rows = %v", n)
	}
}

func TestTriggerDropAndErrors(t *testing.T) {
	f := paperFederation(t, false)
	if _, err := f.ExecScript("CREATE TRIGGER t ON avis AFTER UPDATE EXECUTE UPDATE cars SET rate = 1"); err == nil {
		t.Fatal("trigger without scope should fail")
	}
	if _, err := f.ExecScript("USE avis\nCREATE TRIGGER t ON avis AFTER UPDATE EXECUTE UPDATE cars SET rate = rate"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecScript("DROP TRIGGER t"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecScript("DROP TRIGGER t"); err == nil {
		t.Fatal("double drop should fail")
	}
}
