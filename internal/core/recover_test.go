package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/mtlog"
	"msql/internal/netfault"
)

// TestCrashRecoveryDeliversLoggedCommit is the kill-the-coordinator
// scenario: a TCP federation loses its coordinator after every vital
// participant voted PREPARED and the commit decision hit the journal,
// but before the decision reached one site. A fresh federation built on
// the same journal file must find the in-doubt participant, re-attach
// its parked session, drive it to the logged COMMIT, and compact the
// journal.
func TestCrashRecoveryDeliversLoggedCommit(t *testing.T) {
	fed, servers, sc, proxy := faultFederation(t)
	jpath := filepath.Join(t.TempDir(), "mt.journal")
	j, err := mtlog.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	fed.SetJournal(j)
	sc.armed.Store(true)
	sc.refuse.Store(true) // outage outlasts the first coordinator

	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateUnresolved {
		t.Fatalf("state = %s, want unresolved before the crash (tasks %v)", sync.State, sync.TaskStates)
	}
	// Coordinator "crashes" here: fed is abandoned without closing the
	// journal, exactly as a killed process would leave it.

	// The site comes back; a fresh coordinator is built from nothing but
	// the journal file.
	proxy.SetRefuse(false)
	j2, err := mtlog.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	fed2 := New()
	fed2.SetJournal(j2)

	rep, err := fed2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Multitransactions != 1 {
		t.Fatalf("multitransactions examined = %d, want 1", rep.Multitransactions)
	}
	if len(rep.Resolved) != 1 || !rep.Resolved[0].Commit {
		t.Fatalf("resolved = %+v, want one participant driven to commit", rep.Resolved)
	}
	if len(rep.Unreachable) != 0 {
		t.Fatalf("unreachable = %+v", rep.Unreachable)
	}
	// The participant really reached the logged decision.
	if f := unitedRate(t, servers["united"]); f < 131.9 || f > 132.1 {
		t.Fatalf("united rate = %v, want 132 (committed by recovery)", f)
	}
	// The multitransaction is fully terminal: ended and compacted away.
	states, err := j2.States()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("journal still holds %d multitransactions after compaction", len(states))
	}
	// Recovery is idempotent: a second pass finds nothing.
	rep2, err := fed2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Multitransactions != 0 || len(rep2.Resolved) != 0 || len(rep2.CompRuns) != 0 {
		t.Fatalf("second recovery pass not a no-op: %+v", rep2)
	}
}

// execSeverClient severs its proxy right after a successful Commit once
// armed — killing the connection between an autocommit subquery
// committing and its compensation running on the same session.
type execSeverClient struct {
	lam.Client
	proxy *netfault.Proxy
	armed atomic.Bool
}

func (c *execSeverClient) Open(ctx context.Context, db string) (lam.Session, error) {
	s, err := c.Client.Open(ctx, db)
	if err != nil {
		return nil, err
	}
	return &execSeverSession{Session: s, c: c}, nil
}

type execSeverSession struct {
	lam.Session
	c *execSeverClient
}

func (s *execSeverSession) Commit(ctx context.Context) error {
	err := s.Session.Commit(ctx)
	if err == nil && s.c.armed.Load() {
		s.c.proxy.Sever()
	}
	return err
}

func (s *execSeverSession) RecoveryInfo() (string, int64) {
	return s.Session.(lam.Recoverable).RecoveryInfo()
}

// TestCrashRecoveryCompletesCompensation: an autocommit site commits
// its subquery, the unit aborts (the other vital site fails), and the
// compensating subquery dies on a severed connection. The journal keeps
// the multitransaction open; Recover re-runs the compensation from the
// journaled SQL — exactly once, verified against the LAM-side data.
func TestCrashRecoveryCompletesCompensation(t *testing.T) {
	fed := New()
	fed.SetRecovery(lam.RetryPolicy{Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}, time.Second)

	// continental: autocommit-only (relies on compensation), behind a
	// severing proxy. united: 2PC, with an injected Exec fault so the
	// unit takes the abort path.
	cont := ldbms.NewServer("svc_cont", ldbms.ProfileAutoCommitOnly(), 1)
	if err := cont.CreateDatabase("continental"); err != nil {
		t.Fatal(err)
	}
	seedDB(t, cont, "continental",
		"CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), rate FLOAT)",
		"INSERT INTO flights VALUES (100, 'Houston', 'San Antonio', 100.0)")
	unit := ldbms.NewServer("svc_unit", ldbms.ProfileOracleLike(), 1)
	if err := unit.CreateDatabase("united"); err != nil {
		t.Fatal(err)
	}
	seedDB(t, unit, "united",
		"CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)",
		"INSERT INTO flight VALUES (300, 'Houston', 'San Antonio', 120.0)")
	unit.Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})

	contSrv, err := lam.Serve("127.0.0.1:0", cont)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { contSrv.Close() })
	unitSrv, err := lam.Serve("127.0.0.1:0", unit)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unitSrv.Close() })
	proxy, err := netfault.New(contSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	inner, err := lam.DialWith(context.Background(), proxy.Addr(), lam.DialOptions{
		CallTimeout: 2 * time.Second,
		Retry:       lam.RetryPolicy{Attempts: 1, BaseDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := &execSeverClient{Client: inner, proxy: proxy}
	fed.RegisterClient(proxy.Addr(), sc)

	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_cont SITE '%s' CONNECTMODE CONNECT COMMITMODE COMMIT;
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, proxy.Addr(), unitSrv.Addr())
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "mt.journal")
	j, err := mtlog.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	fed.SetJournal(j)

	// Arm after setup so only the unit's first Exec (the committing
	// update) triggers the sever; the compensation then fails.
	sc.armed.Store(true)
	if _, err := fed.ExecScript(e3Script); err != nil {
		t.Fatal(err)
	}
	// continental committed the raise; the compensation died with the
	// connection.
	if got := remoteRate(t, cont, "continental", "SELECT rate FROM flights WHERE flnu = 100"); got < 109.9 || got > 110.1 {
		t.Fatalf("continental rate = %v, want 110 (update committed, compensation dead)", got)
	}
	sc.armed.Store(false)

	// Coordinator crashes; a fresh one recovers from the journal alone.
	j2, err := mtlog.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	fed2 := New()
	fed2.SetJournal(j2)
	rep, err := fed2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CompRuns) != 1 {
		t.Fatalf("comp runs = %v, want exactly one", rep.CompRuns)
	}
	if got := remoteRate(t, cont, "continental", "SELECT rate FROM flights WHERE flnu = 100"); got < 99.99 || got > 100.01 {
		t.Fatalf("continental rate = %v, want 100 (compensated)", got)
	}

	// Exactly once: a second pass re-runs nothing and the rate stands.
	rep2, err := fed2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.CompRuns) != 0 || rep2.Multitransactions != 0 {
		t.Fatalf("second recovery pass not a no-op: %+v", rep2)
	}
	if got := remoteRate(t, cont, "continental", "SELECT rate FROM flights WHERE flnu = 100"); got < 99.99 || got > 100.01 {
		t.Fatalf("continental rate = %v after second pass, want 100 (compensation must not repeat)", got)
	}
}

func seedDB(t *testing.T, srv *ldbms.Server, db string, stmts ...string) {
	t.Helper()
	sess, err := srv.OpenSession(db)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, q := range stmts {
		if _, err := sess.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	sess.Commit()
}

func remoteRate(t *testing.T, srv *ldbms.Server, db, query string) float64 {
	t.Helper()
	sess, err := srv.OpenSession(db)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(query)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}
