package core

import (
	"testing"

	"msql/internal/ldbms"
)

// paperFederation builds the full appendix setup: five databases on five
// services, incorporated and imported through MSQL statements. Profiles:
// continental is optionally autocommit-only (for §3.3 scenarios), the
// rest provide 2PC.
func paperFederation(t testing.TB, continentalAutoCommit bool) *Federation {
	t.Helper()
	f := New()

	contProfile := ldbms.ProfileOracleLike()
	contMode := "NOCOMMIT"
	if continentalAutoCommit {
		contProfile = ldbms.ProfileAutoCommitOnly()
		contMode = "COMMIT"
	}

	boot := func(svc string, profile ldbms.Profile, db string, ddl []string) {
		srv := f.AddLocalService(svc, profile, 42)
		if err := srv.CreateDatabase(db); err != nil {
			t.Fatal(err)
		}
		sess, err := srv.OpenSession(db)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ddl {
			if _, err := sess.Exec(q); err != nil {
				t.Fatalf("bootstrap %s: %q: %v", db, q, err)
			}
		}
		if err := sess.Commit(); err != nil {
			t.Fatal(err)
		}
		sess.Close()
	}

	boot("svc_cont", contProfile, "continental", []string{
		`CREATE TABLE flights (flnu INTEGER, source CHAR(20), dep CHAR(5), destination CHAR(20), arr CHAR(5), day CHAR(10), rate FLOAT)`,
		`CREATE TABLE f838 (seatnu INTEGER, seatty CHAR(10), seatstatus CHAR(10), clientname CHAR(20))`,
		`INSERT INTO flights VALUES
			(100, 'Houston', '08:00', 'San Antonio', '09:00', 'mon', 100.0),
			(101, 'Houston', '10:00', 'Dallas', '11:00', 'tue', 80.0)`,
		`INSERT INTO f838 VALUES (1, 'window', 'FREE', NULL), (2, 'aisle', 'TAKEN', 'smith')`,
	})
	boot("svc_delta", ldbms.ProfileOracleLike(), "delta", []string{
		`CREATE TABLE flight (fnu INTEGER, source CHAR(20), dest CHAR(20), dep CHAR(5), arr CHAR(5), day CHAR(10), rate FLOAT)`,
		`CREATE TABLE fnu747 (snu INTEGER, sty CHAR(10), sstat CHAR(10), passname CHAR(20))`,
		`INSERT INTO flight VALUES (200, 'Houston', 'San Antonio', '09:00', '10:00', 'mon', 110.0)`,
		`INSERT INTO fnu747 VALUES (1, 'window', 'FREE', NULL), (2, 'aisle', 'FREE', NULL)`,
	})
	boot("svc_unit", ldbms.ProfileIngresLike(), "united", []string{
		`CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), depa CHAR(5), arri CHAR(5), day CHAR(10), rates FLOAT)`,
		`CREATE TABLE fn727 (sn INTEGER, st CHAR(10), sst CHAR(10), pasna CHAR(20))`,
		`INSERT INTO flight VALUES (300, 'Houston', 'San Antonio', '11:00', '12:00', 'tue', 120.0)`,
	})
	boot("svc_avis", ldbms.ProfileOracleLike(), "avis", []string{
		`CREATE TABLE cars (code INTEGER, cartype CHAR(20), rate FLOAT, carst CHAR(12), from_d CHAR(10), to_d CHAR(10), client CHAR(20))`,
		`INSERT INTO cars VALUES
			(1, 'suv', 49.5, 'available', NULL, NULL, NULL),
			(2, 'compact', 29.5, 'rented', NULL, NULL, 'smith'),
			(3, 'luxury', 99.0, 'FREE', NULL, NULL, NULL)`,
	})
	boot("svc_natl", ldbms.ProfileOracleLike(), "national", []string{
		`CREATE TABLE vehicle (vcode INTEGER, vty CHAR(20), vstat CHAR(12), from_d CHAR(10), to_d CHAR(10), client CHAR(20))`,
		`INSERT INTO vehicle VALUES
			(11, 'sedan', 'available', NULL, NULL, NULL),
			(12, 'truck', 'FREE', NULL, NULL, NULL)`,
	})

	setup := `
INCORPORATE SERVICE svc_cont CONNECTMODE CONNECT COMMITMODE ` + contMode + `;
INCORPORATE SERVICE svc_delta CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE COMMIT DROP COMMIT;
INCORPORATE SERVICE svc_avis CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_natl CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE delta FROM SERVICE svc_delta;
IMPORT DATABASE united FROM SERVICE svc_unit;
IMPORT DATABASE avis FROM SERVICE svc_avis;
IMPORT DATABASE national FROM SERVICE svc_natl;
`
	if _, err := f.ExecScript(setup); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return f
}

// localRate reads a rate directly from a server, bypassing MSQL.
func localRate(t testing.TB, f *Federation, svc, db, sql string) float64 {
	t.Helper()
	sess, err := f.Server(svc).OpenSession(db)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Rows[0][0].AsFloat()
	return v
}
