package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/mtlog"
	"msql/internal/wire"
)

// parkOrphan drives a raw wire conversation against a LAM: open a
// session, execute stmts, prepare carrying mtid, then drop the
// connection without a word — exactly what a coordinator crash after
// the vote looks like from the participant's side. Returns the parked
// session's id.
func parkOrphan(t *testing.T, addr string, db string, mtid uint64, stmts ...string) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	call := func(req *wire.Request) *wire.Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.ErrMsg != "" {
			t.Fatalf("%s: %s", req.Kind, resp.ErrMsg)
		}
		return &resp
	}
	sid := call(&wire.Request{Kind: wire.ReqOpen, Database: db}).SessionID
	for _, q := range stmts {
		call(&wire.Request{Kind: wire.ReqExec, SessionID: sid, SQL: q})
	}
	call(&wire.Request{Kind: wire.ReqPrepare, SessionID: sid, MTID: mtid})
	conn.Close() // the "crash": no decision, no close-session
	return sid
}

// waitParked polls until the server has parked n in-doubt sessions (the
// park happens in the connection handler's cleanup, after the client's
// close is noticed).
func waitParked(t *testing.T, ts *lam.TCPServer, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(ts.InDoubt()) != n {
		if time.Now().After(deadline) {
			t.Fatalf("parked sessions = %d, want %d", len(ts.InDoubt()), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func orphanFederation(t *testing.T, addr string) *Federation {
	t.Helper()
	fed := New()
	fed.SetRecovery(lam.RetryPolicy{Attempts: 2, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 20 * time.Millisecond}, time.Second)
	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_orph SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE orphdb FROM SERVICE svc_orph;
`, addr)
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	j, err := mtlog.Open(filepath.Join(t.TempDir(), "coord.journal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	fed.SetJournal(j)
	return fed
}

// TestRecoverOrphansSweepsUnjournaledPrepared covers the crash window
// the journal-driven Recover cannot see: the participant voted and
// parked, but the coordinator died before its prepared record was
// durable. RecoverOrphans must find the session through ReqInDoubt,
// roll it back under presumed abort, and release its locks.
func TestRecoverOrphansSweepsUnjournaledPrepared(t *testing.T) {
	srv := ldbms.NewServer("svc_orph", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("orphdb"); err != nil {
		t.Fatal(err)
	}
	boot, err := srv.OpenSession("orphdb")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("CREATE TABLE acct (id INTEGER, bal FLOAT)"); err != nil {
		t.Fatal(err)
	}
	boot.Commit()
	boot.Close()
	ts, err := lam.Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	fed := orphanFederation(t, ts.Addr())
	parkOrphan(t, ts.Addr(), "orphdb", 77, "INSERT INTO acct VALUES (1, 10.0)")
	waitParked(t, ts, 1)

	swept, err := fed.RecoverOrphans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 1 {
		t.Fatalf("swept = %+v, want one participant", swept)
	}
	if got := len(ts.InDoubt()); got != 0 {
		t.Fatalf("parked sessions after sweep = %d, want 0", got)
	}

	// Presumed abort: the effect is gone and the table lock is free — a
	// fresh writer gets in well under the lock timeout.
	sess, err := srv.OpenSession("orphdb")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec("SELECT * FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("orphan's insert survived: %v", res.Rows)
	}
	if _, err := sess.Exec("INSERT INTO acct VALUES (2, 20.0)"); err != nil {
		t.Fatalf("post-sweep writer blocked: %v", err)
	}
	sess.Commit()

	// Idempotent: a second sweep finds nothing.
	swept, err = fed.RecoverOrphans(context.Background())
	if err != nil || len(swept) != 0 {
		t.Fatalf("second sweep = %+v, %v, want empty", swept, err)
	}
}

// TestRecoverOrphansSparesJournaledSessions: a parked session the
// coordinator journal DOES cover belongs to Recover, which may hold a
// commit decision for it — the sweep must not presume abort.
func TestRecoverOrphansSparesJournaledSessions(t *testing.T) {
	srv := ldbms.NewServer("svc_orph", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("orphdb"); err != nil {
		t.Fatal(err)
	}
	boot, err := srv.OpenSession("orphdb")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("CREATE TABLE acct (id INTEGER, bal FLOAT)"); err != nil {
		t.Fatal(err)
	}
	boot.Commit()
	boot.Close()
	ts, err := lam.Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	fed := orphanFederation(t, ts.Addr())
	sid := parkOrphan(t, ts.Addr(), "orphdb", 42, "INSERT INTO acct VALUES (1, 10.0)")
	waitParked(t, ts, 1)

	// The journal knows this session: an open multitransaction with its
	// prepared record (the crash landed after the flush).
	j := fed.Journal()
	if err := j.Append(&mtlog.Record{Type: mtlog.TBegin, MTID: 42, Kind: "sync"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&mtlog.Record{Type: mtlog.TPrepared, MTID: 42, Task: "t1",
		Addr: ts.Addr(), SessionID: sid}); err != nil {
		t.Fatal(err)
	}

	swept, err := fed.RecoverOrphans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 0 {
		t.Fatalf("swept journaled session: %+v", swept)
	}
	if got := len(ts.InDoubt()); got != 1 {
		t.Fatalf("parked sessions = %d, want the journaled one untouched", got)
	}

	// Recover owns it: with no decision record, presumed abort applies —
	// through the journal-driven path.
	rep, err := fed.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Resolved) != 1 || rep.Resolved[0].Commit {
		t.Fatalf("resolved = %+v, want one rollback", rep.Resolved)
	}
	if got := len(ts.InDoubt()); got != 0 {
		t.Fatalf("parked sessions after Recover = %d, want 0", got)
	}
}
