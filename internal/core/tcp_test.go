package core

import (
	"fmt"
	"testing"

	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/translate"
)

// tcpFederation serves two airline databases over real TCP LAMs and
// incorporates them by site address only.
func tcpFederation(t *testing.T) (*Federation, map[string]*ldbms.Server) {
	t.Helper()
	servers := map[string]*ldbms.Server{}
	fed := New()
	var sites []string
	specs := []struct {
		svc, db string
		ddl     []string
	}{
		{"svc_cont", "continental", []string{
			"CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), rate FLOAT)",
			"INSERT INTO flights VALUES (100, 'Houston', 'San Antonio', 100.0)",
		}},
		{"svc_unit", "united", []string{
			"CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)",
			"INSERT INTO flight VALUES (300, 'Houston', 'San Antonio', 120.0)",
		}},
	}
	for _, sp := range specs {
		srv := ldbms.NewServer(sp.svc, ldbms.ProfileOracleLike(), 1)
		if err := srv.CreateDatabase(sp.db); err != nil {
			t.Fatal(err)
		}
		sess, err := srv.OpenSession(sp.db)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range sp.ddl {
			if _, err := sess.Exec(q); err != nil {
				t.Fatal(err)
			}
		}
		sess.Commit()
		sess.Close()
		ts, err := lam.Serve("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ts.Close() })
		sites = append(sites, ts.Addr())
		servers[sp.db] = srv
	}
	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_cont SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, sites[0], sites[1])
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	return fed, servers
}

func TestTCPFederationVitalUpdate(t *testing.T) {
	fed, servers := tcpFederation(t)
	results, err := fed.ExecScript(`
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateSuccess {
		t.Fatalf("state = %s", sync.State)
	}
	// Verify on the server directly.
	sess, _ := servers["continental"].OpenSession("continental")
	defer sess.Close()
	res, err := sess.Exec("SELECT rate FROM flights WHERE flnu = 100")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rows[0][0].AsFloat()
	if f < 109.9 || f > 110.1 {
		t.Fatalf("rate over TCP = %v", f)
	}
}

func TestTCPFederationVitalAbort(t *testing.T) {
	fed, servers := tcpFederation(t)
	servers["united"].Faults().Add(ldbms.FaultRule{Op: ldbms.FaultPrepare, Database: "united"})
	results, err := fed.ExecScript(`
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateAborted || sync.Status != translate.StatusAborted {
		t.Fatalf("state = %s status = %d", sync.State, sync.Status)
	}
	sess, _ := servers["continental"].OpenSession("continental")
	defer sess.Close()
	res, _ := sess.Exec("SELECT rate FROM flights WHERE flnu = 100")
	if f, _ := res.Rows[0][0].AsFloat(); f != 100 {
		t.Fatalf("rate = %v, 2PC abort over TCP failed", f)
	}
}

func TestTCPFederationCrossJoin(t *testing.T) {
	fed, _ := tcpFederation(t)
	results, err := fed.ExecScript(`
USE continental united
SELECT c.flnu, u.fn FROM continental.flights c, united.flight u WHERE c.rate < u.rates
`)
	if err != nil {
		t.Fatal(err)
	}
	sel := results[len(results)-1]
	if sel.Multitable == nil || len(sel.Multitable.Tables) != 1 || len(sel.Multitable.Tables[0].Rows) != 1 {
		t.Fatalf("join result = %+v", sel.Multitable)
	}
}

func TestTCPUnknownSiteError(t *testing.T) {
	fed := New()
	_, err := fed.ExecScript(`
INCORPORATE SERVICE ghost SITE '127.0.0.1:1' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE d FROM SERVICE ghost;
`)
	if err == nil {
		t.Fatal("import from unreachable site should fail")
	}
}
