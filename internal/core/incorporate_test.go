package core

import (
	"errors"
	"fmt"
	"testing"

	"msql/internal/csvstore"
	"msql/internal/lam"
	"msql/internal/ldbms"
)

// TestIncorporateRejectsNoCommitOnAutocommitOnlyService is the
// presumed-abort answering fix: a site without a prepare interface must
// refuse the COMMITMODE NOCOMMIT role at INCORPORATE time, because a
// prepared session parked there could never be resolved.
func TestIncorporateRejectsNoCommitOnAutocommitOnlyService(t *testing.T) {
	f := New()
	f.AddLocalService("svc_auto", ldbms.ProfileAutoCommitOnly(), 1)

	_, err := f.ExecScript("INCORPORATE SERVICE svc_auto CONNECTMODE CONNECT COMMITMODE NOCOMMIT")
	if !errors.Is(err, ErrCapability) {
		t.Fatalf("err = %v, want ErrCapability", err)
	}
	if !errors.Is(err, ldbms.ErrNoTwoPC) {
		t.Fatalf("err = %v, want to wrap ErrNoTwoPC", err)
	}
	// The rejected declaration must not land in the AD.
	if _, err := f.AD.Lookup("svc_auto"); err == nil {
		t.Fatal("rejected INCORPORATE left an AD entry")
	}
	// Declared honestly it is accepted.
	if _, err := f.ExecScript("INCORPORATE SERVICE svc_auto CONNECTMODE CONNECT COMMITMODE COMMIT"); err != nil {
		t.Fatal(err)
	}
}

// TestIncorporateRejectsNoCommitOverWire validates against the profile
// fetched from a remote LAM — for a CSV-backed site, the other new
// backend.
func TestIncorporateRejectsNoCommitOverWire(t *testing.T) {
	cs, err := csvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := ldbms.NewServerOn("svc_csv", ldbms.ProfileAutoCommitOnly(), 1, cs)
	if err := srv.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	ts, err := lam.Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	f := New()
	_, err = f.ExecScript(fmt.Sprintf(
		"INCORPORATE SERVICE svc_csv SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT", ts.Addr()))
	if !errors.Is(err, ErrCapability) {
		t.Fatalf("err = %v, want ErrCapability", err)
	}
	// The honest declaration works and IMPORT sees the CSV tables.
	if _, err := f.ExecScript(fmt.Sprintf(
		"INCORPORATE SERVICE svc_csv SITE '%s' CONNECTMODE CONNECT COMMITMODE COMMIT;\nIMPORT DATABASE d FROM SERVICE svc_csv;",
		ts.Addr())); err != nil {
		t.Fatal(err)
	}
}

// TestIncorporateAdoptsProfileAutocommitClasses: the live profile's
// autocommit classes (the Ingres DDL quirk) are merged into the AD
// entry even when the declaration omitted them, so the translator
// demands compensation for VITAL DDL instead of trusting a prepared
// state that cannot exist.
func TestIncorporateAdoptsProfileAutocommitClasses(t *testing.T) {
	f := New()
	f.AddLocalService("svc_ing", ldbms.ProfileIngresLike(), 1)
	if _, err := f.ExecScript("INCORPORATE SERVICE svc_ing CONNECTMODE CONNECT COMMITMODE NOCOMMIT"); err != nil {
		t.Fatal(err)
	}
	e, err := f.AD.Lookup("svc_ing")
	if err != nil {
		t.Fatal(err)
	}
	if !e.DDLCommit["CREATE"] || !e.DDLCommit["DROP"] {
		t.Fatalf("DDLCommit = %v, want CREATE and DROP adopted from the profile", e.DDLCommit)
	}
}

// TestIncorporateUnreachableSiteDeferred: with no client registered or
// dialable the declaration is recorded on trust, preserving the
// incorporate-before-register bootstrap order.
func TestIncorporateUnreachableSiteDeferred(t *testing.T) {
	f := New()
	if _, err := f.ExecScript("INCORPORATE SERVICE svc_later CONNECTMODE CONNECT COMMITMODE NOCOMMIT"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AD.Lookup("svc_later"); err != nil {
		t.Fatal("deferred declaration missing from AD")
	}
}
