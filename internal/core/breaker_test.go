package core

import (
	"fmt"
	"testing"
	"time"

	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/netfault"
)

// breakerFederation: continental healthy over TCP, united behind a
// netfault proxy, both lazily dialed so the federation's breaker policy
// wraps them.
func breakerFederation(t *testing.T, pol lam.BreakerPolicy, timeout time.Duration) (*Federation, *netfault.Proxy) {
	t.Helper()
	fed := New()
	fed.CallTimeout = timeout
	fed.SetBreaker(pol)

	build := func(svc, db string, ddl ...string) string {
		srv := ldbms.NewServer(svc, ldbms.ProfileOracleLike(), 1)
		if err := srv.CreateDatabase(db); err != nil {
			t.Fatal(err)
		}
		seedDB(t, srv, db, ddl...)
		ts, err := lam.Serve("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ts.Close() })
		return ts.Addr()
	}
	contAddr := build("svc_cont", "continental",
		"CREATE TABLE flights (flnu INTEGER, source CHAR(20), rate FLOAT)",
		"INSERT INTO flights VALUES (100, 'Houston', 100.0)")
	unitAddr := build("svc_unit", "united",
		"CREATE TABLE flight (fn INTEGER, sour CHAR(20), rates FLOAT)",
		"INSERT INTO flight VALUES (300, 'Houston', 120.0)")
	proxy, err := netfault.New(unitAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_cont SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, contAddr, proxy.Addr())
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	return fed, proxy
}

// Non-vital scope: continental must answer, united may degrade.
const breakerSelect = "USE continental VITAL united\nSELECT rate% FROM flight%"

func TestBreakerDegradesNonVitalSiteToPartialResults(t *testing.T) {
	const timeout = 150 * time.Millisecond
	fed, proxy := breakerFederation(t, lam.BreakerPolicy{
		Threshold: 2, Cooldown: time.Hour,
	}, timeout)

	// The site goes dark. Statements keep timing out against it until
	// the breaker trips at the failure threshold.
	proxy.SetBlackhole(true)
	b := func() *lam.BreakerClient { return fed.Breaker(proxy.Addr()) }
	deadline := time.Now().Add(30 * time.Second)
	for b() == nil || b().State() != lam.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		if _, err := fed.ExecScript(breakerSelect); err == nil {
			t.Fatal("statement against a black-holed site should fail before the breaker trips")
		}
	}

	// With the breaker open the degraded site fast-fails: the statement
	// answers from the reachable sites well inside one call timeout,
	// reporting the degraded scope entry instead of erroring.
	start := time.Now()
	results, err := fed.ExecScript(breakerSelect)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if elapsed >= timeout {
		t.Fatalf("degraded query took %v, want fast-fail under the %v call timeout", elapsed, timeout)
	}
	res := results[len(results)-1]
	if len(res.Degraded) != 1 || res.Degraded[0].Entry != "united" {
		t.Fatalf("degraded = %v, want [united]", res.Degraded)
	}
	if res.Degraded[0].Reason == "" {
		t.Fatalf("degraded entry carries no reason")
	}
	if res.Multitable == nil || len(res.Multitable.Tables) != 1 || res.Multitable.Tables[0].Database != "continental" {
		t.Fatalf("multitable = %+v, want continental's partial result", res.Multitable)
	}
	if len(res.Multitable.Tables[0].Rows) != 1 {
		t.Fatalf("continental rows = %d, want 1", len(res.Multitable.Tables[0].Rows))
	}
}

func TestBreakerVitalSiteStillErrors(t *testing.T) {
	const timeout = 150 * time.Millisecond
	fed, proxy := breakerFederation(t, lam.BreakerPolicy{
		Threshold: 1, Cooldown: time.Hour,
	}, timeout)
	proxy.SetBlackhole(true)

	// Trip the breaker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b := fed.Breaker(proxy.Addr()); b != nil && b.State() == lam.BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		_, _ = fed.ExecScript(breakerSelect)
	}
	// A VITAL designator on the dark site must surface the failure, not
	// silently drop the partial result.
	if _, err := fed.ExecScript("USE continental united VITAL\nSELECT rate% FROM flight%"); err == nil {
		t.Fatal("vital site behind an open breaker must fail the query")
	}
}

func TestBreakerHalfOpensAfterCooldownAndRecovers(t *testing.T) {
	const timeout = 150 * time.Millisecond
	cooldown := 200 * time.Millisecond
	fed, proxy := breakerFederation(t, lam.BreakerPolicy{
		Threshold: 1, Cooldown: cooldown,
	}, timeout)
	proxy.SetBlackhole(true)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if b := fed.Breaker(proxy.Addr()); b != nil && b.State() == lam.BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		_, _ = fed.ExecScript(breakerSelect)
	}

	// Cooldown elapses: the breaker reports half-open and admits one
	// trial. The site is healthy again, so the trial closes the breaker
	// and the full multitable comes back.
	time.Sleep(cooldown + 50*time.Millisecond)
	if st := fed.Breaker(proxy.Addr()).State(); st != lam.BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", st)
	}
	proxy.SetBlackhole(false)
	results, err := fed.ExecScript(breakerSelect)
	if err != nil {
		t.Fatalf("query after recovery failed: %v", err)
	}
	res := results[len(results)-1]
	if len(res.Degraded) != 0 {
		t.Fatalf("degraded = %v after recovery", res.Degraded)
	}
	if res.Multitable == nil || len(res.Multitable.Tables) != 2 {
		t.Fatalf("multitable = %+v, want both sites' partial results", res.Multitable)
	}
	if fed.Breaker(proxy.Addr()).State() != lam.BreakerClosed {
		t.Fatalf("state = %s, want closed after successful trial", fed.Breaker(proxy.Addr()).State())
	}
}
