// Package core implements the multidatabase system facade — the paper's
// complete execution environment for Extended MSQL. A Federation owns the
// Auxiliary Directory and Global Data Dictionary, talks to incorporated
// services through LAM clients (in-process or TCP), and executes MSQL
// scripts by running them through the full pipeline: multiple identifier
// substitution → disambiguation → decomposition → DOL plan generation →
// execution on the DOL engine.
//
// Synchronization points follow §3.2.2 of the paper: manipulation
// statements accumulate in a transaction unit that is synchronized (its
// vital set committed or rolled back/compensated) at an explicit COMMIT
// or ROLLBACK, at a scope change (USE), and at the end of the script.
// SELECT statements execute immediately; cross-database statements form
// their own unit.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"msql/internal/admit"
	"msql/internal/catalog"
	"msql/internal/dol"
	"msql/internal/dolengine"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/msqlparser"
	"msql/internal/mtlog"
	"msql/internal/multitable"
	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
	"msql/internal/translate"
)

// Facade errors.
var (
	ErrNoClient    = errors.New("core: no client registered for site")
	ErrUnsupported = errors.New("core: unsupported at the multidatabase level")
	// ErrCapability rejects an INCORPORATE SERVICE declaration the
	// service's live capability profile contradicts — most importantly
	// COMMITMODE NOCOMMIT on a product that cannot prepare. Catching the
	// lie up front matters for presumed abort: a site without a 2PC
	// interface can never answer for a prepared session, so a
	// misdeclared profile would park multitransactions in-doubt forever
	// instead of failing their first synchronization cleanly.
	ErrCapability = errors.New("core: INCORPORATE declaration contradicts service capabilities")
)

// Facade metrics (see DESIGN.md §8).
var (
	mStatements = obs.Default().CounterVec("msql_statements_total",
		"MSQL statements executed, by verb.", "verb")
	mUnitOutcomes = obs.Default().CounterVec("msql_unit_outcomes_total",
		"Synchronized units (sync, global DML, multitransactions) by terminal GlobalState.", "state")
	mDegradedResults = obs.Default().Counter("msql_degraded_results_total",
		"Non-vital scope entries dropped from an answer because their site's circuit breaker was open.")
	mStmtLatency = obs.Default().HistogramVec("msql_stmt_latency_seconds",
		"MSQL statement wall time in seconds, by tenant and verb.", nil, "tenant", "verb")
)

// tenantLabel names a session's tenant for metric labels; the anonymous
// tenant gets a stable non-empty label.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "anonymous"
	}
	return tenant
}

// stmtText renders a statement for the query inventory and the
// slow-query log: full SQL for query-shaped statements, a short synthetic
// form for everything else.
func stmtText(stmt msqlparser.Stmt) string {
	switch st := stmt.(type) {
	case *msqlparser.QueryStmt:
		return sqlparser.Deparse(st.Body)
	case *msqlparser.ExplainStmt:
		var b strings.Builder
		b.WriteString("EXPLAIN ")
		if st.Analyze {
			b.WriteString("ANALYZE ")
		}
		if st.JSON {
			b.WriteString("FORMAT JSON ")
		}
		b.WriteString(sqlparser.Deparse(st.Query.Body))
		return b.String()
	case *msqlparser.UseStmt:
		names := make([]string, len(st.Entries))
		for i, e := range st.Entries {
			names[i] = e.Name()
			if e.Vital {
				names[i] += " VITAL"
			}
		}
		return "USE " + strings.Join(names, " ")
	case *msqlparser.MultiTxStmt:
		return fmt.Sprintf("BEGIN MULTITRANSACTION (%d statements)", len(st.Body))
	default:
		return strings.ToUpper(verbOf(stmt))
	}
}

// GlobalState classifies the outcome of a synchronized unit with respect
// to its vital set (§3.2.1).
type GlobalState uint8

// Global states.
const (
	// StateSuccess: every VITAL subquery committed.
	StateSuccess GlobalState = iota
	// StateAborted: every VITAL subquery rolled back or compensated.
	StateAborted
	// StateIncorrect: some VITAL subqueries committed and some did not —
	// the failure mode the vital-set machinery exists to prevent; it can
	// still surface on commit-time faults.
	StateIncorrect
	// StateUnresolved: some VITAL subquery is still in-doubt — its LAM
	// stayed unreachable through the bounded recovery loop, so the global
	// outcome is not yet known. The unit is neither Success nor Incorrect
	// until the participants in Result.Unresolved are driven to their
	// recorded decision (lam.Resolve).
	StateUnresolved
)

func (s GlobalState) String() string {
	switch s {
	case StateSuccess:
		return "success"
	case StateAborted:
		return "aborted"
	case StateIncorrect:
		return "incorrect"
	case StateUnresolved:
		return "unresolved"
	default:
		return fmt.Sprintf("GlobalState(%d)", uint8(s))
	}
}

// ResultKind tags what a Result describes.
type ResultKind uint8

// Result kinds.
const (
	KindSelect ResultKind = iota
	KindSync              // a synchronized transaction unit
	KindGlobalDML
	KindMultiTx
	KindIncorporate
	KindImport
	KindNoop
	KindExplain // an EXPLAIN [ANALYZE] plan tree
)

// Result is the outcome of one MSQL statement (or synchronization point).
type Result struct {
	Kind ResultKind
	// Multitable holds SELECT partial results, one table per database.
	Multitable *multitable.Multitable
	// RowsAffected maps scope entry names to modified row counts.
	RowsAffected map[string]int
	// Status is the plan's DOLSTATUS return code.
	Status int
	// State classifies the vital-set outcome for sync/DML results.
	State GlobalState
	// TaskStates reports each entry's subquery outcome.
	TaskStates map[string]dol.TaskStatus
	// Compensated lists entries whose committed subqueries were undone by
	// compensating actions.
	Compensated []string
	// Skipped lists scope databases the query was not pertinent to.
	Skipped []semvar.Skip
	// DOL is the generated program text.
	DOL string
	// AchievedState is the acceptable termination state a
	// multitransaction reached, nil when it failed.
	AchievedState []string
	// TriggersFired lists interdatabase triggers executed after this
	// result's synchronization.
	TriggersFired []string
	// Mode records whether a sync result synchronized in commit or
	// rollback mode (meaningful for KindSync).
	Mode translate.SyncMode
	// Unresolved lists in-doubt participants the recovery loop could not
	// reach; non-empty only with State == StateUnresolved or when a
	// non-vital participant stayed in doubt.
	Unresolved []Participant
	// Degraded lists non-vital scope entries whose site's circuit
	// breaker was open: the multitable carries no partial result for
	// them, but the query still answered from the reachable sites.
	Degraded []DegradedEntry
	// Elapsed is the wall time of the statement that produced this
	// result (stamped by ExecScriptContext).
	Elapsed time.Duration
	// TraceID correlates this result with its trace in the tracer's ring
	// buffer (and in the LAM servers' tracers), empty when untraced.
	TraceID string
	// Plan is the federation plan tree of an EXPLAIN [ANALYZE] statement
	// (KindExplain), with per-site subtrees grafted under their task
	// nodes when analyzed. Nil for every other kind.
	Plan *obs.PlanNode
	// PlanJSON records the FORMAT JSON request of the EXPLAIN statement
	// that produced Plan, so renderers pick the right serialization.
	PlanJSON bool
}

// DegradedEntry names a scope entry missing from an answer and why.
type DegradedEntry struct {
	Entry  string
	Reason string
}

// Participant identifies an in-doubt remote transaction branch left
// behind by a synchronization point: the LAM to contact, the server-side
// session id, and the decision to deliver. Resolve it with lam.Resolve
// once the site is reachable again.
type Participant struct {
	Entry     string // scope entry name
	Database  string
	Addr      string
	SessionID int64
	// Commit is the recorded synchronization-point decision.
	Commit bool
}

// Federation is the multidatabase system: the Auxiliary Directory, the
// Global Data Dictionary, the LAM clients of incorporated services, the
// DOL engine, and the durable coordinator journal. All of that is shared
// state, safe for concurrent use.
//
// Script execution happens in sessions (see Session): each client of the
// federation opens one with NewSession and runs scripts through it;
// independent sessions execute in parallel against the shared engine and
// journal. The Federation's own ExecScript/Flush/Scope methods operate on
// a lazily created default session, preserving the original
// one-user-one-Federation API — that default session, like any Session,
// is not safe for concurrent use.
type Federation struct {
	AD  *catalog.AD
	GDD *catalog.GDD

	mu      sync.Mutex
	clients map[string]lam.Client
	servers map[string]*ldbms.Server
	def     *Session // lazily created default session for the legacy API

	tctx   *translate.Context
	engine *dolengine.Engine

	// DryRun translates plans without executing them (used by doldump).
	DryRun bool

	// CallTimeout bounds each remote LAM call made through lazily dialed
	// TCP clients (0 uses the lam package default). Set it before the
	// first statement touches a remote site.
	CallTimeout time.Duration

	// StmtTimeout bounds each statement's execution (including the
	// synchronization it triggers); 0 means unbounded. A statement that
	// overruns is canceled mid-flight — prepared participants are still
	// driven to their decision by the engine's recovery loop, which runs
	// on its own budget. Set it before serving sessions.
	StmtTimeout time.Duration

	// Tracer receives one trace per executed script (defaults to
	// obs.DefaultTracer). Set it before executing statements to direct
	// traces elsewhere, nil to disable tracing.
	Tracer *obs.Tracer

	// multidatabase-level definitions, shared across sessions
	defMu      sync.RWMutex
	multiviews map[string]*storedView
	triggers   map[string]*storedTrigger

	// admission gates statement execution across all sessions (nil runs
	// ungated). See internal/admit.
	admission *admit.Controller

	// durable-coordinator state (see journal.go)
	journal    *mtlog.Journal
	drainCh    <-chan struct{}
	breakerPol *lam.BreakerPolicy
}

// storedView is a multidatabase view: a multiple query with the scope and
// LET bindings captured at definition time.
type storedView struct {
	scope []semvar.ScopeEntry
	lets  []msqlparser.LetBinding
	body  sqlparser.Statement
}

// storedTrigger is an interdatabase trigger definition.
type storedTrigger struct {
	name     string
	database string
	event    string
	scope    []semvar.ScopeEntry
	lets     []msqlparser.LetBinding
	query    *msqlparser.QueryStmt
}

// New creates an empty federation.
func New() *Federation {
	f := &Federation{
		AD:         catalog.NewAD(),
		GDD:        catalog.NewGDD(),
		clients:    make(map[string]lam.Client),
		servers:    make(map[string]*ldbms.Server),
		multiviews: make(map[string]*storedView),
		triggers:   make(map[string]*storedTrigger),
		Tracer:     obs.DefaultTracer,
	}
	f.tctx = &translate.Context{AD: f.AD, GDD: f.GDD}
	f.engine = dolengine.New(f)
	return f
}

// SetRecovery configures the bounded in-doubt resolution loop run after
// synchronization points whose commit/rollback decisions could not be
// delivered: policy paces the reconnect attempts per participant, timeout
// bounds each attempt.
func (f *Federation) SetRecovery(policy lam.RetryPolicy, timeout time.Duration) {
	f.engine.Recovery = policy
	f.engine.RecoverTimeout = timeout
}

// RegisterClient makes a LAM client reachable under a site or service
// name.
func (f *Federation) RegisterClient(key string, c lam.Client) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clients[key] = c
}

// AddLocalService creates an in-process LDBMS, registers its LAM client
// under the service name, and returns the server for bootstrapping data.
func (f *Federation) AddLocalService(name string, profile ldbms.Profile, seed int64) *ldbms.Server {
	return f.AddLocalServer(ldbms.NewServer(name, profile, seed))
}

// AddLocalServer registers a prebuilt in-process LDBMS — typically one
// whose store is disk-backed — under its service name.
func (f *Federation) AddLocalServer(srv *ldbms.Server) *ldbms.Server {
	f.RegisterClient(srv.Name(), lam.NewLocal(srv))
	f.mu.Lock()
	f.servers[srv.Name()] = srv
	f.mu.Unlock()
	return srv
}

// CloseServers checkpoints and closes every local server's store.
// Memory-backed servers are no-ops; disk-backed ones flush their buffer
// pools and catalogs so a later process can reopen the data directory.
func (f *Federation) CloseServers() error {
	f.mu.Lock()
	servers := make([]*ldbms.Server, 0, len(f.servers))
	for _, s := range f.servers {
		servers = append(servers, s)
	}
	f.mu.Unlock()
	var first error
	for _, s := range servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Server returns a previously added local server.
func (f *Federation) Server(name string) *ldbms.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.servers[name]
}

// Resolve implements dolengine.Directory: registered clients first, then
// a lazy TCP dial for host:port sites.
func (f *Federation) Resolve(site string) (lam.Client, error) {
	f.mu.Lock()
	if c, ok := f.clients[site]; ok {
		f.mu.Unlock()
		return c, nil
	}
	pol := f.breakerPol
	f.mu.Unlock()
	if strings.Contains(site, ":") {
		c, err := lam.DialWith(context.Background(), site, lam.DialOptions{CallTimeout: f.CallTimeout})
		if err != nil {
			return nil, fmt.Errorf("%w: %s (%v)", ErrNoClient, site, err)
		}
		var client lam.Client = c
		if pol != nil {
			client = lam.WithBreaker(c, *pol)
		}
		f.RegisterClient(site, client)
		return client, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNoClient, site)
}

// liveProfile fetches the capability profile behind a service entry
// when a client is already registered (under the service or site name)
// or the site is dialable. ok=false means no client could be reached —
// the declaration is then taken on trust, as the AD always did before
// runtime registration existed.
func (f *Federation) liveProfile(ctx context.Context, entry catalog.ServiceEntry) (ldbms.Profile, bool) {
	f.mu.Lock()
	c, found := f.clients[entry.Name]
	if !found && entry.Site != "" {
		c, found = f.clients[entry.Site]
	}
	f.mu.Unlock()
	if !found && entry.Site != "" && strings.Contains(entry.Site, ":") {
		rc, err := f.Resolve(entry.Site)
		if err != nil {
			return ldbms.Profile{}, false
		}
		c = rc
	}
	if c == nil {
		return ldbms.Profile{}, false
	}
	p, err := c.Profile(ctx)
	if err != nil {
		return ldbms.Profile{}, false
	}
	return p, true
}

// checkIncorporate validates an INCORPORATE declaration against the
// service's live profile and folds undeclared autocommit classes into
// the entry. A service declared COMMITMODE NOCOMMIT whose product
// cannot prepare is rejected with ErrCapability: under presumed abort
// such a site could never resolve a parked session, so it must refuse
// the 2PC role up front. Autocommit classes the profile reports (the
// Ingres DDL quirk) are merged into DDLCommit so the translator demands
// compensation even when the administrator's declaration missed them.
func (f *Federation) checkIncorporate(ctx context.Context, entry *catalog.ServiceEntry) error {
	p, ok := f.liveProfile(ctx, *entry)
	if !ok {
		return nil
	}
	if !entry.AutoCommitOnly && !p.TwoPC {
		return fmt.Errorf("%w: service %s declared COMMITMODE NOCOMMIT but product %q has no prepare interface (%w); incorporate it with COMMITMODE COMMIT",
			ErrCapability, entry.Name, p.Name, ldbms.ErrNoTwoPC)
	}
	for class, on := range p.AutoCommitClasses {
		if !on {
			continue
		}
		if entry.DDLCommit == nil {
			entry.DDLCommit = make(map[string]bool)
		}
		entry.DDLCommit[class.String()] = true
	}
	return nil
}

// clientFor returns the LAM client of an incorporated service.
func (f *Federation) clientFor(service string) (lam.Client, error) {
	entry, err := f.AD.Lookup(service)
	if err != nil {
		return nil, err
	}
	if entry.Site != "" {
		if c, err := f.Resolve(entry.Site); err == nil {
			return c, nil
		}
	}
	return f.Resolve(service)
}

// NewSession opens an independent script-execution session on the
// federation. Sessions carry the per-client state (USE scope, LET
// bindings, the pending transaction unit, trigger re-entrancy) and may
// run concurrently with one another; a single Session is not safe for
// concurrent use. tenant names the client for admission control; empty
// is the anonymous tenant.
func (f *Federation) NewSession(tenant string) *Session {
	return &Session{f: f, tenant: tenant}
}

// SetAdmission installs an admission controller gating every session's
// statement execution (nil removes the gate). Install it before serving
// concurrent sessions.
func (f *Federation) SetAdmission(c *admit.Controller) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.admission = c
}

// admitCtl returns the installed admission controller (possibly nil).
func (f *Federation) admitCtl() *admit.Controller {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admission
}

// defaultSession returns the session behind the Federation's legacy
// single-user API, creating it on first use.
func (f *Federation) defaultSession() *Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.def == nil {
		f.def = &Session{f: f}
	}
	return f.def
}

// Scope returns the default session's current USE scope.
func (f *Federation) Scope() []semvar.ScopeEntry {
	return f.defaultSession().Scope()
}

// ExecScript parses and executes an MSQL script in the default session,
// returning one Result per produced outcome (statements and
// synchronization points). Execution stops at the first error; results
// produced so far are returned.
func (f *Federation) ExecScript(src string) ([]*Result, error) {
	return f.defaultSession().ExecScriptContext(context.Background(), src)
}

// ExecScriptContext is ExecScript under a context: the deadline bounds
// every remote LAM call the script makes, and cancellation fails
// in-flight subqueries. In-doubt resolution after a lost connection runs
// on its own bounded budget (the engine's recovery policy), not ctx —
// commit/rollback decisions for prepared participants must be delivered
// even when the script deadline has expired.
func (f *Federation) ExecScriptContext(ctx context.Context, src string) ([]*Result, error) {
	return f.defaultSession().ExecScriptContext(ctx, src)
}

// verbOf names a statement for the per-verb statement counter and the
// statement span.
func verbOf(stmt msqlparser.Stmt) string {
	switch st := stmt.(type) {
	case *msqlparser.UseStmt:
		return "use"
	case *msqlparser.LetStmt:
		return "let"
	case *msqlparser.QueryStmt:
		switch st.Body.(type) {
		case *sqlparser.SelectStmt:
			return "select"
		case *sqlparser.InsertStmt:
			return "insert"
		case *sqlparser.UpdateStmt:
			return "update"
		case *sqlparser.DeleteStmt:
			return "delete"
		case *sqlparser.CreateTableStmt, *sqlparser.CreateViewStmt:
			return "create"
		case *sqlparser.DropTableStmt, *sqlparser.DropViewStmt:
			return "drop"
		default:
			return "query"
		}
	case *msqlparser.ExplainStmt:
		return "explain"
	case *msqlparser.CommitStmt:
		return "commit"
	case *msqlparser.RollbackStmt:
		return "rollback"
	case *msqlparser.MultiTxStmt:
		return "multitx"
	case *msqlparser.IncorporateStmt:
		return "incorporate"
	case *msqlparser.ImportStmt:
		return "import"
	case *msqlparser.CreateMultidatabaseStmt, *msqlparser.CreateMultiviewStmt, *msqlparser.CreateTriggerStmt:
		return "define"
	case *msqlparser.DropMultidatabaseStmt, *msqlparser.DropMultiviewStmt, *msqlparser.DropTriggerStmt:
		return "undefine"
	default:
		return "other"
	}
}

// defineMultiview stores a multiview definition (shared across sessions).
func (f *Federation) defineMultiview(name string, v *storedView) {
	f.defMu.Lock()
	defer f.defMu.Unlock()
	f.multiviews[name] = v
}

// dropMultiview removes a multiview definition.
func (f *Federation) dropMultiview(name string) error {
	f.defMu.Lock()
	defer f.defMu.Unlock()
	if _, ok := f.multiviews[name]; !ok {
		return fmt.Errorf("core: no multiview %s", name)
	}
	delete(f.multiviews, name)
	return nil
}

// defineTrigger stores an interdatabase trigger (shared across sessions).
func (f *Federation) defineTrigger(name string, t *storedTrigger) {
	f.defMu.Lock()
	defer f.defMu.Unlock()
	f.triggers[name] = t
}

// dropTrigger removes a trigger definition.
func (f *Federation) dropTrigger(name string) error {
	f.defMu.Lock()
	defer f.defMu.Unlock()
	if _, ok := f.triggers[name]; !ok {
		return fmt.Errorf("core: no trigger %s", name)
	}
	delete(f.triggers, name)
	return nil
}

// triggerSnapshot returns the current trigger definitions. The returned
// map is a copy; the definitions themselves are immutable once stored.
func (f *Federation) triggerSnapshot() map[string]*storedTrigger {
	f.defMu.RLock()
	defer f.defMu.RUnlock()
	if len(f.triggers) == 0 {
		return nil
	}
	out := make(map[string]*storedTrigger, len(f.triggers))
	for k, v := range f.triggers {
		out[k] = v
	}
	return out
}

// dedupeScope drops repeated scope entries (same name), keeping the
// first occurrence but letting a later VITAL designator strengthen it.
func dedupeScope(entries []semvar.ScopeEntry) []semvar.ScopeEntry {
	seen := map[string]int{}
	var out []semvar.ScopeEntry
	for _, e := range entries {
		if i, ok := seen[e.Name]; ok {
			if e.Vital {
				out[i].Vital = true
			}
			continue
		}
		seen[e.Name] = len(out)
		out = append(out, e)
	}
	return out
}

// expandScope replaces multidatabase names in a scope by their members,
// propagating the VITAL designator. Aliases cannot attach to a
// multidatabase (the expansion would make them ambiguous).
func (f *Federation) expandScope(entries []semvar.ScopeEntry) ([]semvar.ScopeEntry, error) {
	var out []semvar.ScopeEntry
	for _, e := range entries {
		members, ok := f.GDD.Multidatabase(e.Database)
		if !ok {
			out = append(out, e)
			continue
		}
		if e.Name != e.Database {
			return nil, fmt.Errorf("core: multidatabase %s cannot take alias %s", e.Database, e.Name)
		}
		for _, m := range members {
			out = append(out, semvar.ScopeEntry{Database: m, Name: m, Vital: e.Vital})
		}
	}
	return out, nil
}

// printPlan materializes the DOL program text under a plan span.
func printPlan(ctx context.Context, prog *dol.Program) string {
	sp, _ := obs.StartSpan(ctx, "plan", obs.KindPlan)
	defer sp.End()
	return dol.Print(prog)
}

func resultList(rs ...*Result) []*Result {
	var out []*Result
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Flush synchronizes the default session's pending unit in commit mode.
// It returns nil when nothing is pending.
func (f *Federation) Flush() (*Result, error) {
	return f.defaultSession().Flush()
}

// dropProvisional removes translation-time GDD entries whose creating
// task did not commit (out == nil removes all, for dry runs and engine
// failures).
func (f *Federation) dropProvisional(meta *translate.Meta, out *dolengine.Outcome) {
	for _, p := range meta.Provisional {
		if out != nil && out.TaskStatus(p.TaskName) == dol.StatusCommitted {
			continue
		}
		_ = f.GDD.DropTable(p.Database, p.Table)
	}
}

// fillFromOutcome copies task states and classifies the vital outcome.
func (f *Federation) fillFromOutcome(res *Result, meta *translate.Meta, out *dolengine.Outcome) {
	res.Status = out.Status
	// Map unresolved in-doubt participants from task names to scope
	// entries so callers can identify and later resolve them.
	entryOf := make(map[string]translate.TaskMeta, len(meta.Tasks))
	for _, tm := range meta.Tasks {
		entryOf[tm.Name] = tm
	}
	for _, u := range out.Unresolved {
		p := Participant{Addr: u.Addr, SessionID: u.SessionID, Commit: u.Commit, Database: u.Database}
		if tm, ok := entryOf[u.Task]; ok {
			p.Entry = tm.Entry.Name
		}
		res.Unresolved = append(res.Unresolved, p)
	}
	res.TaskStates = make(map[string]dol.TaskStatus)
	res.RowsAffected = make(map[string]int)
	compDone := map[string]bool{}
	for _, tm := range meta.Tasks {
		st := out.TaskStatus(tm.Name)
		if tm.Role == translate.RoleComp {
			if st == dol.StatusCommitted {
				compDone[tm.Entry.Name] = true
				res.Compensated = append(res.Compensated, tm.Entry.Name)
			}
			continue
		}
		res.TaskStates[tm.Entry.Name] = st
		if info, ok := out.Tasks[tm.Name]; ok {
			res.RowsAffected[tm.Entry.Name] += info.RowsAffected
		}
	}
	// Classify with respect to the vital set.
	if len(meta.VitalNames) == 0 {
		res.State = StateSuccess
		return
	}
	committed, undone, indoubt := 0, 0, 0
	for _, name := range meta.VitalNames {
		st := res.TaskStates[name]
		switch {
		case st == dol.StatusInDoubt:
			indoubt++
		case st == dol.StatusCommitted && !compDone[name]:
			committed++
		default:
			undone++
		}
	}
	switch {
	case indoubt > 0:
		// A vital participant's fate is unknown: refuse to call the unit
		// either Success or Incorrect until it is resolved.
		res.State = StateUnresolved
	case undone == 0:
		res.State = StateSuccess
	case committed == 0:
		res.State = StateAborted
	default:
		res.State = StateIncorrect
	}
}

// maintainGDD applies committed DDL to the dictionary.
func (f *Federation) maintainGDD(meta *translate.Meta, out *dolengine.Outcome) {
	for _, tm := range meta.Tasks {
		if tm.Role == translate.RoleComp || out.TaskStatus(tm.Name) != dol.StatusCommitted {
			continue
		}
		switch st := tm.Stmt.(type) {
		case *sqlparser.CreateTableStmt:
			def := catalog.TableDef{Name: st.Table.Last()}
			for _, c := range st.Columns {
				def.Columns = append(def.Columns, toRelColumn(c))
			}
			_ = f.GDD.PutTable(tm.Entry.Database, def)
		case *sqlparser.DropTableStmt:
			_ = f.GDD.DropTable(tm.Entry.Database, st.Table.Last())
		}
	}
}

// matchMultiview recognizes the multiview invocation form
// SELECT * FROM <name> where <name> is a defined multidatabase view.
func (f *Federation) matchMultiview(sel *sqlparser.SelectStmt) *storedView {
	if len(sel.From) != 1 || len(sel.From[0].Name.Parts) != 1 || sel.From[0].Alias != "" {
		return nil
	}
	f.defMu.RLock()
	view, ok := f.multiviews[sel.From[0].Name.Parts[0]]
	f.defMu.RUnlock()
	if !ok {
		return nil
	}
	plainStar := len(sel.Items) == 1 && sel.Items[0].Star && sel.Items[0].Qualifier == ""
	if !plainStar || sel.Where != nil || sel.GroupBy != nil || sel.Having != nil ||
		sel.OrderBy != nil || sel.Limit >= 0 || sel.Distinct {
		return nil
	}
	return view
}

// assembleMultitable copies the partial results of read tasks (or the
// final coordinator task) into the result's multitable.
func (f *Federation) assembleMultitable(res *Result, meta *translate.Meta, out *dolengine.Outcome) error {
	res.Status = out.Status
	res.TaskStates = make(map[string]dol.TaskStatus)
	mt := &multitable.Multitable{}
	for _, tm := range meta.Tasks {
		st := out.TaskStatus(tm.Name)
		res.TaskStates[tm.Entry.Name] = st
		isResultTask := tm.Role == translate.RoleRead && meta.FinalTask == "" ||
			tm.Name == meta.FinalTask
		if !isResultTask {
			continue
		}
		info := out.Tasks[tm.Name]
		if info == nil || info.Result == nil {
			if info != nil && info.Err != nil {
				// A breaker-open site degrades a non-vital entry to an
				// absent partial result; everything else still fails the
				// query (an unreachable site whose breaker has not tripped
				// is an error, not a silent hole in the answer).
				if errors.Is(info.Err, lam.ErrBreakerOpen) && !tm.Entry.Vital {
					res.Degraded = append(res.Degraded, DegradedEntry{
						Entry:  tm.Entry.Name,
						Reason: info.Err.Error(),
					})
					mDegradedResults.Inc()
					continue
				}
				return fmt.Errorf("core: subquery on %s failed: %w", tm.Entry.Name, info.Err)
			}
			continue
		}
		mt.Tables = append(mt.Tables, multitable.Table{
			Database: tm.Entry.Name,
			Columns:  info.Result.Columns,
			Rows:     info.Result.Rows,
		})
	}
	res.Multitable = mt
	return nil
}

func toRelColumn(c sqlparser.ColumnDef) relstore.Column {
	return relstore.Column{Name: c.Name, Type: c.Type, Width: c.Width, Key: c.Key}
}
