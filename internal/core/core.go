// Package core implements the multidatabase system facade — the paper's
// complete execution environment for Extended MSQL. A Federation owns the
// Auxiliary Directory and Global Data Dictionary, talks to incorporated
// services through LAM clients (in-process or TCP), and executes MSQL
// scripts by running them through the full pipeline: multiple identifier
// substitution → disambiguation → decomposition → DOL plan generation →
// execution on the DOL engine.
//
// Synchronization points follow §3.2.2 of the paper: manipulation
// statements accumulate in a transaction unit that is synchronized (its
// vital set committed or rolled back/compensated) at an explicit COMMIT
// or ROLLBACK, at a scope change (USE), and at the end of the script.
// SELECT statements execute immediately; cross-database statements form
// their own unit.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"msql/internal/catalog"
	"msql/internal/dol"
	"msql/internal/dolengine"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/msqlparser"
	"msql/internal/mtlog"
	"msql/internal/multitable"
	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
	"msql/internal/translate"
)

// Facade errors.
var (
	ErrNoClient    = errors.New("core: no client registered for site")
	ErrUnsupported = errors.New("core: unsupported at the multidatabase level")
)

// Facade metrics (see DESIGN.md §8).
var (
	mStatements = obs.Default().CounterVec("msql_statements_total",
		"MSQL statements executed, by verb.", "verb")
	mUnitOutcomes = obs.Default().CounterVec("msql_unit_outcomes_total",
		"Synchronized units (sync, global DML, multitransactions) by terminal GlobalState.", "state")
	mDegradedResults = obs.Default().Counter("msql_degraded_results_total",
		"Non-vital scope entries dropped from an answer because their site's circuit breaker was open.")
)

// GlobalState classifies the outcome of a synchronized unit with respect
// to its vital set (§3.2.1).
type GlobalState uint8

// Global states.
const (
	// StateSuccess: every VITAL subquery committed.
	StateSuccess GlobalState = iota
	// StateAborted: every VITAL subquery rolled back or compensated.
	StateAborted
	// StateIncorrect: some VITAL subqueries committed and some did not —
	// the failure mode the vital-set machinery exists to prevent; it can
	// still surface on commit-time faults.
	StateIncorrect
	// StateUnresolved: some VITAL subquery is still in-doubt — its LAM
	// stayed unreachable through the bounded recovery loop, so the global
	// outcome is not yet known. The unit is neither Success nor Incorrect
	// until the participants in Result.Unresolved are driven to their
	// recorded decision (lam.Resolve).
	StateUnresolved
)

func (s GlobalState) String() string {
	switch s {
	case StateSuccess:
		return "success"
	case StateAborted:
		return "aborted"
	case StateIncorrect:
		return "incorrect"
	case StateUnresolved:
		return "unresolved"
	default:
		return fmt.Sprintf("GlobalState(%d)", uint8(s))
	}
}

// ResultKind tags what a Result describes.
type ResultKind uint8

// Result kinds.
const (
	KindSelect ResultKind = iota
	KindSync              // a synchronized transaction unit
	KindGlobalDML
	KindMultiTx
	KindIncorporate
	KindImport
	KindNoop
)

// Result is the outcome of one MSQL statement (or synchronization point).
type Result struct {
	Kind ResultKind
	// Multitable holds SELECT partial results, one table per database.
	Multitable *multitable.Multitable
	// RowsAffected maps scope entry names to modified row counts.
	RowsAffected map[string]int
	// Status is the plan's DOLSTATUS return code.
	Status int
	// State classifies the vital-set outcome for sync/DML results.
	State GlobalState
	// TaskStates reports each entry's subquery outcome.
	TaskStates map[string]dol.TaskStatus
	// Compensated lists entries whose committed subqueries were undone by
	// compensating actions.
	Compensated []string
	// Skipped lists scope databases the query was not pertinent to.
	Skipped []semvar.Skip
	// DOL is the generated program text.
	DOL string
	// AchievedState is the acceptable termination state a
	// multitransaction reached, nil when it failed.
	AchievedState []string
	// TriggersFired lists interdatabase triggers executed after this
	// result's synchronization.
	TriggersFired []string
	// Mode records whether a sync result synchronized in commit or
	// rollback mode (meaningful for KindSync).
	Mode translate.SyncMode
	// Unresolved lists in-doubt participants the recovery loop could not
	// reach; non-empty only with State == StateUnresolved or when a
	// non-vital participant stayed in doubt.
	Unresolved []Participant
	// Degraded lists non-vital scope entries whose site's circuit
	// breaker was open: the multitable carries no partial result for
	// them, but the query still answered from the reachable sites.
	Degraded []DegradedEntry
	// Elapsed is the wall time of the statement that produced this
	// result (stamped by ExecScriptContext).
	Elapsed time.Duration
	// TraceID correlates this result with its trace in the tracer's ring
	// buffer (and in the LAM servers' tracers), empty when untraced.
	TraceID string
}

// DegradedEntry names a scope entry missing from an answer and why.
type DegradedEntry struct {
	Entry  string
	Reason string
}

// Participant identifies an in-doubt remote transaction branch left
// behind by a synchronization point: the LAM to contact, the server-side
// session id, and the decision to deliver. Resolve it with lam.Resolve
// once the site is reachable again.
type Participant struct {
	Entry     string // scope entry name
	Database  string
	Addr      string
	SessionID int64
	// Commit is the recorded synchronization-point decision.
	Commit bool
}

// Federation is the multidatabase system. A Federation represents one
// multidatabase user's session: ExecScript carries scope and transaction
// state across calls and is not safe for concurrent use. Multiple users
// of the same local database systems each build their own Federation
// around shared servers (see internal/demo's concurrency tests); the
// LDBMS layer's locking arbitrates between them.
type Federation struct {
	AD  *catalog.AD
	GDD *catalog.GDD

	mu      sync.Mutex
	clients map[string]lam.Client
	servers map[string]*ldbms.Server

	tctx   *translate.Context
	engine *dolengine.Engine

	// DryRun translates plans without executing them (used by doldump).
	DryRun bool

	// CallTimeout bounds each remote LAM call made through lazily dialed
	// TCP clients (0 uses the lam package default). Set it before the
	// first statement touches a remote site.
	CallTimeout time.Duration

	// Tracer receives one trace per executed script (defaults to
	// obs.DefaultTracer). Set it before executing statements to direct
	// traces elsewhere, nil to disable tracing.
	Tracer *obs.Tracer

	// script execution state
	scope []semvar.ScopeEntry
	lets  []msqlparser.LetBinding
	unit  []translate.UnitQuery

	// multidatabase-level definitions
	multiviews map[string]*storedView
	triggers   map[string]*storedTrigger
	inTrigger  bool

	// durable-coordinator state (see journal.go)
	journal    *mtlog.Journal
	drainCh    <-chan struct{}
	breakerPol *lam.BreakerPolicy
}

// storedView is a multidatabase view: a multiple query with the scope and
// LET bindings captured at definition time.
type storedView struct {
	scope []semvar.ScopeEntry
	lets  []msqlparser.LetBinding
	body  sqlparser.Statement
}

// storedTrigger is an interdatabase trigger definition.
type storedTrigger struct {
	name     string
	database string
	event    string
	scope    []semvar.ScopeEntry
	lets     []msqlparser.LetBinding
	query    *msqlparser.QueryStmt
}

// New creates an empty federation.
func New() *Federation {
	f := &Federation{
		AD:         catalog.NewAD(),
		GDD:        catalog.NewGDD(),
		clients:    make(map[string]lam.Client),
		servers:    make(map[string]*ldbms.Server),
		multiviews: make(map[string]*storedView),
		triggers:   make(map[string]*storedTrigger),
		Tracer:     obs.DefaultTracer,
	}
	f.tctx = &translate.Context{AD: f.AD, GDD: f.GDD}
	f.engine = dolengine.New(f)
	return f
}

// SetRecovery configures the bounded in-doubt resolution loop run after
// synchronization points whose commit/rollback decisions could not be
// delivered: policy paces the reconnect attempts per participant, timeout
// bounds each attempt.
func (f *Federation) SetRecovery(policy lam.RetryPolicy, timeout time.Duration) {
	f.engine.Recovery = policy
	f.engine.RecoverTimeout = timeout
}

// RegisterClient makes a LAM client reachable under a site or service
// name.
func (f *Federation) RegisterClient(key string, c lam.Client) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clients[key] = c
}

// AddLocalService creates an in-process LDBMS, registers its LAM client
// under the service name, and returns the server for bootstrapping data.
func (f *Federation) AddLocalService(name string, profile ldbms.Profile, seed int64) *ldbms.Server {
	srv := ldbms.NewServer(name, profile, seed)
	f.RegisterClient(name, lam.NewLocal(srv))
	f.mu.Lock()
	f.servers[name] = srv
	f.mu.Unlock()
	return srv
}

// Server returns a previously added local server.
func (f *Federation) Server(name string) *ldbms.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.servers[name]
}

// Resolve implements dolengine.Directory: registered clients first, then
// a lazy TCP dial for host:port sites.
func (f *Federation) Resolve(site string) (lam.Client, error) {
	f.mu.Lock()
	if c, ok := f.clients[site]; ok {
		f.mu.Unlock()
		return c, nil
	}
	pol := f.breakerPol
	f.mu.Unlock()
	if strings.Contains(site, ":") {
		c, err := lam.DialWith(context.Background(), site, lam.DialOptions{CallTimeout: f.CallTimeout})
		if err != nil {
			return nil, fmt.Errorf("%w: %s (%v)", ErrNoClient, site, err)
		}
		var client lam.Client = c
		if pol != nil {
			client = lam.WithBreaker(c, *pol)
		}
		f.RegisterClient(site, client)
		return client, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNoClient, site)
}

// clientFor returns the LAM client of an incorporated service.
func (f *Federation) clientFor(service string) (lam.Client, error) {
	entry, err := f.AD.Lookup(service)
	if err != nil {
		return nil, err
	}
	if entry.Site != "" {
		if c, err := f.Resolve(entry.Site); err == nil {
			return c, nil
		}
	}
	return f.Resolve(service)
}

// Scope returns the current USE scope.
func (f *Federation) Scope() []semvar.ScopeEntry {
	return append([]semvar.ScopeEntry(nil), f.scope...)
}

// ExecScript parses and executes an MSQL script, returning one Result per
// produced outcome (statements and synchronization points). Execution
// stops at the first error; results produced so far are returned.
func (f *Federation) ExecScript(src string) ([]*Result, error) {
	return f.ExecScriptContext(context.Background(), src)
}

// ExecScriptContext is ExecScript under a context: the deadline bounds
// every remote LAM call the script makes, and cancellation fails
// in-flight subqueries. In-doubt resolution after a lost connection runs
// on its own bounded budget (the engine's recovery policy), not ctx —
// commit/rollback decisions for prepared participants must be delivered
// even when the script deadline has expired.
func (f *Federation) ExecScriptContext(ctx context.Context, src string) ([]*Result, error) {
	// Each script call gets one trace unless the caller already opened
	// one; spans from every layer below (translate, plan, engine tasks,
	// wire calls, 2PC phases) accumulate in it.
	trace := obs.TraceFrom(ctx)
	if trace == nil && f.Tracer != nil {
		trace = f.Tracer.Start("script")
		ctx = obs.WithTrace(ctx, trace)
		defer trace.Finish()
	}

	psp, _ := obs.StartSpan(ctx, "parse", obs.KindParse)
	script, err := msqlparser.Parse(src)
	psp.EndErr(err)
	if err != nil {
		return nil, err
	}
	var results []*Result
	add := func(elapsed time.Duration, rs ...*Result) {
		for _, r := range rs {
			if r != nil {
				if r.Elapsed == 0 {
					r.Elapsed = elapsed
				}
				r.TraceID = trace.ID()
				results = append(results, r)
			}
		}
	}
	for _, stmt := range script.Stmts {
		if f.draining() {
			// Stop at a statement boundary: synchronize what is pending so
			// no unit is abandoned inside the prepared-to-commit window,
			// then report the drain.
			start := time.Now()
			r, ferr := f.flush(ctx)
			add(time.Since(start), r)
			if ferr != nil {
				return results, ferr
			}
			return results, ErrDrained
		}
		verb := verbOf(stmt)
		ssp, sctx := obs.StartSpan(ctx, "stmt:"+verb, obs.KindStatement)
		start := time.Now()
		rs, err := f.execStmt(sctx, stmt)
		ssp.EndErr(err)
		mStatements.With(verb).Inc()
		add(time.Since(start), rs...)
		if err != nil {
			return results, err
		}
	}
	start := time.Now()
	r, err := f.flush(ctx)
	add(time.Since(start), r)
	return results, err
}

// verbOf names a statement for the per-verb statement counter and the
// statement span.
func verbOf(stmt msqlparser.Stmt) string {
	switch st := stmt.(type) {
	case *msqlparser.UseStmt:
		return "use"
	case *msqlparser.LetStmt:
		return "let"
	case *msqlparser.QueryStmt:
		switch st.Body.(type) {
		case *sqlparser.SelectStmt:
			return "select"
		case *sqlparser.InsertStmt:
			return "insert"
		case *sqlparser.UpdateStmt:
			return "update"
		case *sqlparser.DeleteStmt:
			return "delete"
		case *sqlparser.CreateTableStmt, *sqlparser.CreateViewStmt:
			return "create"
		case *sqlparser.DropTableStmt, *sqlparser.DropViewStmt:
			return "drop"
		default:
			return "query"
		}
	case *msqlparser.CommitStmt:
		return "commit"
	case *msqlparser.RollbackStmt:
		return "rollback"
	case *msqlparser.MultiTxStmt:
		return "multitx"
	case *msqlparser.IncorporateStmt:
		return "incorporate"
	case *msqlparser.ImportStmt:
		return "import"
	case *msqlparser.CreateMultidatabaseStmt, *msqlparser.CreateMultiviewStmt, *msqlparser.CreateTriggerStmt:
		return "define"
	case *msqlparser.DropMultidatabaseStmt, *msqlparser.DropMultiviewStmt, *msqlparser.DropTriggerStmt:
		return "undefine"
	default:
		return "other"
	}
}

// execStmt executes one statement, returning zero or more results (a
// statement that triggers a synchronization point yields the sync result
// first).
func (f *Federation) execStmt(ctx context.Context, stmt msqlparser.Stmt) ([]*Result, error) {
	switch st := stmt.(type) {
	case *msqlparser.UseStmt:
		sync, err := f.flush(ctx)
		if err != nil {
			return resultList(sync), err
		}
		entries, err := f.expandScope(semvar.ScopeFromUse(st))
		if err != nil {
			return resultList(sync), err
		}
		if st.Current {
			f.scope = dedupeScope(append(f.scope, entries...))
		} else {
			f.scope = dedupeScope(entries)
		}
		f.lets = nil
		return resultList(sync), nil

	case *msqlparser.LetStmt:
		f.lets = append(f.lets, st.Bindings...)
		return nil, nil

	case *msqlparser.QueryStmt:
		return f.execQuery(ctx, st)

	case *msqlparser.CommitStmt:
		r, err := f.sync(ctx, translate.SyncCommit)
		return resultList(r), err

	case *msqlparser.RollbackStmt:
		r, err := f.sync(ctx, translate.SyncRollback)
		return resultList(r), err

	case *msqlparser.MultiTxStmt:
		sync, err := f.flush(ctx)
		if err != nil {
			return resultList(sync), err
		}
		r, err := f.execMultiTx(ctx, st)
		return resultList(sync, r), err

	case *msqlparser.IncorporateStmt:
		f.AD.Incorporate(catalog.ServiceEntry{
			Name:           st.Service,
			Site:           st.Site,
			Connect:        st.Connect,
			AutoCommitOnly: st.AutoCommitOnly,
			DDLCommit:      st.DDLCommit,
		})
		return resultList(&Result{Kind: KindIncorporate}), nil

	case *msqlparser.ImportStmt:
		client, err := f.clientFor(st.Service)
		if err != nil {
			return nil, err
		}
		spec := catalog.ImportSpec{Table: st.Table, View: st.View, Columns: st.Columns}
		if err := catalog.ImportDatabase(ctx, f.GDD, f.AD, client, st.Database, st.Service, spec); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindImport}), nil

	case *msqlparser.CreateMultidatabaseStmt:
		if err := f.GDD.DefineMultidatabase(st.Name, st.Members); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.DropMultidatabaseStmt:
		if err := f.GDD.DropMultidatabase(st.Name); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.CreateMultiviewStmt:
		if len(f.scope) == 0 {
			return nil, fmt.Errorf("core: CREATE MULTIVIEW captures the current scope — issue USE first")
		}
		f.multiviews[st.Name] = &storedView{
			scope: append([]semvar.ScopeEntry(nil), f.scope...),
			lets:  append([]msqlparser.LetBinding(nil), f.lets...),
			body:  st.Body,
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.DropMultiviewStmt:
		if _, ok := f.multiviews[st.Name]; !ok {
			return nil, fmt.Errorf("core: no multiview %s", st.Name)
		}
		delete(f.multiviews, st.Name)
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.CreateTriggerStmt:
		if len(f.scope) == 0 {
			return nil, fmt.Errorf("core: CREATE TRIGGER captures the current scope — issue USE first")
		}
		f.triggers[st.Name] = &storedTrigger{
			name:     st.Name,
			database: st.Database,
			event:    st.Event,
			scope:    append([]semvar.ScopeEntry(nil), f.scope...),
			lets:     append([]msqlparser.LetBinding(nil), f.lets...),
			query:    st.Body,
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.DropTriggerStmt:
		if _, ok := f.triggers[st.Name]; !ok {
			return nil, fmt.Errorf("core: no trigger %s", st.Name)
		}
		delete(f.triggers, st.Name)
		return resultList(&Result{Kind: KindNoop}), nil

	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, stmt)
	}
}

// dedupeScope drops repeated scope entries (same name), keeping the
// first occurrence but letting a later VITAL designator strengthen it.
func dedupeScope(entries []semvar.ScopeEntry) []semvar.ScopeEntry {
	seen := map[string]int{}
	var out []semvar.ScopeEntry
	for _, e := range entries {
		if i, ok := seen[e.Name]; ok {
			if e.Vital {
				out[i].Vital = true
			}
			continue
		}
		seen[e.Name] = len(out)
		out = append(out, e)
	}
	return out
}

// expandScope replaces multidatabase names in a scope by their members,
// propagating the VITAL designator. Aliases cannot attach to a
// multidatabase (the expansion would make them ambiguous).
func (f *Federation) expandScope(entries []semvar.ScopeEntry) ([]semvar.ScopeEntry, error) {
	var out []semvar.ScopeEntry
	for _, e := range entries {
		members, ok := f.GDD.Multidatabase(e.Database)
		if !ok {
			out = append(out, e)
			continue
		}
		if e.Name != e.Database {
			return nil, fmt.Errorf("core: multidatabase %s cannot take alias %s", e.Database, e.Name)
		}
		for _, m := range members {
			out = append(out, semvar.ScopeEntry{Database: m, Name: m, Vital: e.Vital})
		}
	}
	return out, nil
}

// printPlan materializes the DOL program text under a plan span.
func printPlan(ctx context.Context, prog *dol.Program) string {
	sp, _ := obs.StartSpan(ctx, "plan", obs.KindPlan)
	defer sp.End()
	return dol.Print(prog)
}

func resultList(rs ...*Result) []*Result {
	var out []*Result
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// execQuery routes one manipulation statement.
func (f *Federation) execQuery(ctx context.Context, q *msqlparser.QueryStmt) ([]*Result, error) {
	switch q.Body.(type) {
	case *sqlparser.CreateDatabaseStmt, *sqlparser.DropDatabaseStmt:
		return nil, fmt.Errorf("%w: CREATE/DROP DATABASE — create the database on its service and IMPORT it", ErrUnsupported)
	}
	if sel, ok := q.Body.(*sqlparser.SelectStmt); ok {
		if view := f.matchMultiview(sel); view != nil {
			r, err := f.execStoredSelect(ctx, view)
			return resultList(r), err
		}
		r, err := f.execSelect(ctx, q)
		return resultList(r), err
	}
	if len(f.scope) == 0 {
		return nil, translate.ErrNoScope
	}
	if semvar.IsGlobalQuery(q.Body, f.scope) {
		// Cross-database DML forms its own unit.
		sync, err := f.flush(ctx)
		if err != nil {
			return resultList(sync), err
		}
		r, err := f.execGlobalDML(ctx, q)
		return resultList(sync, r), err
	}
	f.unit = append(f.unit, translate.UnitQuery{
		Lets:  append([]msqlparser.LetBinding(nil), f.lets...),
		Query: q,
	})
	return nil, nil
}

// Flush synchronizes the pending unit in commit mode. It returns nil when
// nothing is pending.
func (f *Federation) Flush() (*Result, error) {
	return f.flush(context.Background())
}

func (f *Federation) flush(ctx context.Context) (*Result, error) {
	if len(f.unit) == 0 {
		return nil, nil
	}
	return f.sync(ctx, translate.SyncCommit)
}

// sync translates and runs the pending unit.
func (f *Federation) sync(ctx context.Context, mode translate.SyncMode) (*Result, error) {
	unit := f.unit
	f.unit = nil
	if len(unit) == 0 {
		return nil, nil
	}
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateUnit(f.scope, unit, mode)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindSync, DOL: printPlan(ctx, prog), Skipped: meta.Skipped, Mode: mode}
	if f.DryRun {
		f.dropProvisional(meta, nil)
		return res, nil
	}
	out, err := f.runPlan(ctx, "sync", prog, meta)
	if err != nil {
		f.dropProvisional(meta, out)
		return res, err
	}
	f.dropProvisional(meta, out)
	f.fillFromOutcome(res, meta, out)
	mUnitOutcomes.With(res.State.String()).Inc()
	f.maintainGDD(meta, out)
	if err := f.fireTriggers(ctx, res, meta, out); err != nil {
		return res, err
	}
	return res, nil
}

// dropProvisional removes translation-time GDD entries whose creating
// task did not commit (out == nil removes all, for dry runs and engine
// failures).
func (f *Federation) dropProvisional(meta *translate.Meta, out *dolengine.Outcome) {
	for _, p := range meta.Provisional {
		if out != nil && out.TaskStatus(p.TaskName) == dol.StatusCommitted {
			continue
		}
		_ = f.GDD.DropTable(p.Database, p.Table)
	}
}

// fireTriggers runs interdatabase triggers matching committed
// manipulation subqueries of a synchronized unit. Triggers do not fire
// recursively.
func (f *Federation) fireTriggers(ctx context.Context, res *Result, meta *translate.Meta, out *dolengine.Outcome) error {
	if f.inTrigger || len(f.triggers) == 0 {
		return nil
	}
	eventOf := func(s sqlparser.Statement) string {
		switch s.(type) {
		case *sqlparser.UpdateStmt:
			return "UPDATE"
		case *sqlparser.InsertStmt:
			return "INSERT"
		case *sqlparser.DeleteStmt:
			return "DELETE"
		case *sqlparser.CreateTableStmt, *sqlparser.CreateViewStmt:
			return "CREATE"
		case *sqlparser.DropTableStmt, *sqlparser.DropViewStmt:
			return "DROP"
		default:
			return ""
		}
	}
	fired := map[string]bool{}
	for _, tm := range meta.Tasks {
		if tm.Role != translate.RoleWrite && tm.Role != translate.RoleFinal {
			continue
		}
		if out.TaskStatus(tm.Name) != dol.StatusCommitted {
			continue
		}
		ev := eventOf(tm.Stmt)
		for name, trig := range f.triggers {
			if fired[name] || trig.event != ev {
				continue
			}
			if trig.database != tm.Entry.Database && trig.database != tm.Entry.Name {
				continue
			}
			fired[name] = true
			f.inTrigger = true
			_, _, terr := func() (*dol.Program, *translate.Meta, error) {
				prog, tmeta, err := f.tctx.TranslateUnit(trig.scope,
					[]translate.UnitQuery{{Lets: trig.lets, Query: trig.query}}, translate.SyncCommit)
				if err != nil {
					return nil, nil, err
				}
				_, err = f.runPlan(ctx, "trigger", prog, tmeta)
				return prog, tmeta, err
			}()
			f.inTrigger = false
			if terr != nil {
				return fmt.Errorf("core: trigger %s: %w", name, terr)
			}
			res.TriggersFired = append(res.TriggersFired, name)
		}
	}
	return nil
}

// fillFromOutcome copies task states and classifies the vital outcome.
func (f *Federation) fillFromOutcome(res *Result, meta *translate.Meta, out *dolengine.Outcome) {
	res.Status = out.Status
	// Map unresolved in-doubt participants from task names to scope
	// entries so callers can identify and later resolve them.
	entryOf := make(map[string]translate.TaskMeta, len(meta.Tasks))
	for _, tm := range meta.Tasks {
		entryOf[tm.Name] = tm
	}
	for _, u := range out.Unresolved {
		p := Participant{Addr: u.Addr, SessionID: u.SessionID, Commit: u.Commit, Database: u.Database}
		if tm, ok := entryOf[u.Task]; ok {
			p.Entry = tm.Entry.Name
		}
		res.Unresolved = append(res.Unresolved, p)
	}
	res.TaskStates = make(map[string]dol.TaskStatus)
	res.RowsAffected = make(map[string]int)
	compDone := map[string]bool{}
	for _, tm := range meta.Tasks {
		st := out.TaskStatus(tm.Name)
		if tm.Role == translate.RoleComp {
			if st == dol.StatusCommitted {
				compDone[tm.Entry.Name] = true
				res.Compensated = append(res.Compensated, tm.Entry.Name)
			}
			continue
		}
		res.TaskStates[tm.Entry.Name] = st
		if info, ok := out.Tasks[tm.Name]; ok {
			res.RowsAffected[tm.Entry.Name] += info.RowsAffected
		}
	}
	// Classify with respect to the vital set.
	if len(meta.VitalNames) == 0 {
		res.State = StateSuccess
		return
	}
	committed, undone, indoubt := 0, 0, 0
	for _, name := range meta.VitalNames {
		st := res.TaskStates[name]
		switch {
		case st == dol.StatusInDoubt:
			indoubt++
		case st == dol.StatusCommitted && !compDone[name]:
			committed++
		default:
			undone++
		}
	}
	switch {
	case indoubt > 0:
		// A vital participant's fate is unknown: refuse to call the unit
		// either Success or Incorrect until it is resolved.
		res.State = StateUnresolved
	case undone == 0:
		res.State = StateSuccess
	case committed == 0:
		res.State = StateAborted
	default:
		res.State = StateIncorrect
	}
}

// maintainGDD applies committed DDL to the dictionary.
func (f *Federation) maintainGDD(meta *translate.Meta, out *dolengine.Outcome) {
	for _, tm := range meta.Tasks {
		if tm.Role == translate.RoleComp || out.TaskStatus(tm.Name) != dol.StatusCommitted {
			continue
		}
		switch st := tm.Stmt.(type) {
		case *sqlparser.CreateTableStmt:
			def := catalog.TableDef{Name: st.Table.Last()}
			for _, c := range st.Columns {
				def.Columns = append(def.Columns, toRelColumn(c))
			}
			_ = f.GDD.PutTable(tm.Entry.Database, def)
		case *sqlparser.DropTableStmt:
			_ = f.GDD.DropTable(tm.Entry.Database, st.Table.Last())
		}
	}
}

// matchMultiview recognizes the multiview invocation form
// SELECT * FROM <name> where <name> is a defined multidatabase view.
func (f *Federation) matchMultiview(sel *sqlparser.SelectStmt) *storedView {
	if len(sel.From) != 1 || len(sel.From[0].Name.Parts) != 1 || sel.From[0].Alias != "" {
		return nil
	}
	view, ok := f.multiviews[sel.From[0].Name.Parts[0]]
	if !ok {
		return nil
	}
	plainStar := len(sel.Items) == 1 && sel.Items[0].Star && sel.Items[0].Qualifier == ""
	if !plainStar || sel.Where != nil || sel.GroupBy != nil || sel.Having != nil ||
		sel.OrderBy != nil || sel.Limit >= 0 || sel.Distinct {
		return nil
	}
	return view
}

// execStoredSelect executes a multiview's captured multiple query.
func (f *Federation) execStoredSelect(ctx context.Context, view *storedView) (*Result, error) {
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(view.scope, view.lets, &msqlparser.QueryStmt{Body: view.body})
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindSelect, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	esp, ectx := obs.StartSpan(ctx, "execute:select", obs.KindEngine)
	out, err := f.engine.Run(ectx, prog)
	esp.EndErr(err)
	if err != nil {
		return res, err
	}
	f.assembleMultitable(res, meta, out)
	return res, nil
}

// execSelect runs a retrieval query immediately and assembles the
// multitable.
func (f *Federation) execSelect(ctx context.Context, q *msqlparser.QueryStmt) (*Result, error) {
	if len(f.scope) == 0 {
		return nil, translate.ErrNoScope
	}
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(f.scope, f.lets, q)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindSelect, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	esp, ectx := obs.StartSpan(ctx, "execute:select", obs.KindEngine)
	out, err := f.engine.Run(ectx, prog)
	esp.EndErr(err)
	if err != nil {
		return res, err
	}
	if err := f.assembleMultitable(res, meta, out); err != nil {
		return res, err
	}
	return res, nil
}

// assembleMultitable copies the partial results of read tasks (or the
// final coordinator task) into the result's multitable.
func (f *Federation) assembleMultitable(res *Result, meta *translate.Meta, out *dolengine.Outcome) error {
	res.Status = out.Status
	res.TaskStates = make(map[string]dol.TaskStatus)
	mt := &multitable.Multitable{}
	for _, tm := range meta.Tasks {
		st := out.TaskStatus(tm.Name)
		res.TaskStates[tm.Entry.Name] = st
		isResultTask := tm.Role == translate.RoleRead && meta.FinalTask == "" ||
			tm.Name == meta.FinalTask
		if !isResultTask {
			continue
		}
		info := out.Tasks[tm.Name]
		if info == nil || info.Result == nil {
			if info != nil && info.Err != nil {
				// A breaker-open site degrades a non-vital entry to an
				// absent partial result; everything else still fails the
				// query (an unreachable site whose breaker has not tripped
				// is an error, not a silent hole in the answer).
				if errors.Is(info.Err, lam.ErrBreakerOpen) && !tm.Entry.Vital {
					res.Degraded = append(res.Degraded, DegradedEntry{
						Entry:  tm.Entry.Name,
						Reason: info.Err.Error(),
					})
					mDegradedResults.Inc()
					continue
				}
				return fmt.Errorf("core: subquery on %s failed: %w", tm.Entry.Name, info.Err)
			}
			continue
		}
		mt.Tables = append(mt.Tables, multitable.Table{
			Database: tm.Entry.Name,
			Columns:  info.Result.Columns,
			Rows:     info.Result.Rows,
		})
	}
	res.Multitable = mt
	return nil
}

// execGlobalDML runs a cross-database manipulation statement as its own
// unit.
func (f *Federation) execGlobalDML(ctx context.Context, q *msqlparser.QueryStmt) (*Result, error) {
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(f.scope, f.lets, q)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindGlobalDML, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	out, err := f.runPlan(ctx, "dml", prog, meta)
	if err != nil {
		return res, err
	}
	f.fillFromOutcome(res, meta, out)
	mUnitOutcomes.With(res.State.String()).Inc()
	f.maintainGDD(meta, out)
	if err := f.fireTriggers(ctx, res, meta, out); err != nil {
		return res, err
	}
	return res, nil
}

// execMultiTx runs a multitransaction.
func (f *Federation) execMultiTx(ctx context.Context, m *msqlparser.MultiTxStmt) (*Result, error) {
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateMultiTx(m)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindMultiTx, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	out, err := f.runPlan(ctx, "multitx", prog, meta)
	if err != nil {
		return res, err
	}
	f.fillFromOutcome(res, meta, out)
	if res.Status >= 0 && res.Status < len(meta.AcceptableStates) {
		res.AchievedState = meta.AcceptableStates[res.Status]
		res.State = StateSuccess
	} else {
		res.State = StateAborted
	}
	mUnitOutcomes.With(res.State.String()).Inc()
	return res, nil
}

func toRelColumn(c sqlparser.ColumnDef) relstore.Column {
	return relstore.Column{Name: c.Name, Type: c.Type, Width: c.Width}
}
