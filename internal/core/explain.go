package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"msql/internal/dol"
	"msql/internal/dolengine"
	"msql/internal/msqlparser"
	"msql/internal/obs"
	"msql/internal/sqlparser"
	"msql/internal/translate"
)

// execExplain runs EXPLAIN [ANALYZE] on a retrieval query. Plain EXPLAIN
// translates the query — decomposition, per-site tasks, ships, the final
// coordinator query — and renders the federation plan without touching
// any site. ANALYZE executes it: every SELECT in a task body is wrapped
// in a site-local EXPLAIN ANALYZE, which the local engines execute
// normally (returning the target's real rows, so shipping and multitable
// assembly are unchanged) while attaching their annotated plan subtrees;
// those subtrees are then grafted under the federation tree's task nodes
// together with per-task wall time and row counts.
func (s *Session) execExplain(ctx context.Context, ex *msqlparser.ExplainStmt) (*Result, error) {
	f := s.f
	scope, lets, q := s.scope, s.lets, ex.Query
	sel, ok := q.Body.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT queries, got %s", sqlparser.Deparse(q.Body))
	}
	if view := f.matchMultiview(sel); view != nil {
		scope, lets = view.scope, view.lets
		q = &msqlparser.QueryStmt{Body: view.body}
	}
	if len(scope) == 0 {
		return nil, translate.ErrNoScope
	}
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(scope, lets, q)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindExplain, DOL: printPlan(ctx, prog), Skipped: meta.Skipped, PlanJSON: ex.JSON}
	if !ex.Analyze || f.DryRun {
		res.Plan = federationPlan(prog, meta, nil)
		return res, nil
	}
	for _, st := range prog.Stmts {
		ts, ok := st.(*dol.TaskStmt)
		if !ok {
			continue
		}
		for i, body := range ts.Body {
			if bsel, ok := body.(*sqlparser.SelectStmt); ok {
				ts.Body[i] = &sqlparser.ExplainStmt{Analyze: true, Target: bsel}
			}
		}
	}
	start := time.Now()
	esp, ectx := obs.StartSpan(ctx, "execute:explain", obs.KindEngine)
	out, err := f.engine.Run(ectx, prog)
	esp.EndErr(err)
	if err != nil {
		return res, err
	}
	if err := f.assembleMultitable(res, meta, out); err != nil {
		return res, err
	}
	root := federationPlan(prog, meta, out)
	root.Analyzed = true
	root.Loops = 1
	root.TimeNS = time.Since(start).Nanoseconds()
	for _, t := range res.Multitable.Tables {
		root.Rows += int64(len(t.Rows))
	}
	for _, ch := range root.Children {
		root.PageHits += ch.PageHits
		root.PageMisses += ch.PageMisses
	}
	res.Plan = root
	return res, nil
}

// roleName labels a task's translator role for plan trees.
func roleName(r translate.TaskRole) string {
	switch r {
	case translate.RoleRead:
		return "read"
	case translate.RoleWrite:
		return "write"
	case translate.RoleComp:
		return "comp"
	case translate.RoleFinal:
		return "final"
	default:
		return "task"
	}
}

// federationPlan builds the coordinator-side plan tree from a translated
// DOL program: one node per task (scope entry, role, VITAL/COMP flags)
// and per ship, plus the scope entries the query was not pertinent to.
// With a non-nil outcome, task nodes are annotated with status, wall
// time, and row counts, and each site's EXPLAIN ANALYZE subtree is
// grafted under its task node.
func federationPlan(prog *dol.Program, meta *translate.Meta, out *dolengine.Outcome) *obs.PlanNode {
	byName := make(map[string]translate.TaskMeta, len(meta.Tasks))
	for _, tm := range meta.Tasks {
		byName[tm.Name] = tm
	}
	mode := "fan-out select"
	if meta.FinalTask != "" {
		mode = "decomposed global query"
	}
	root := &obs.PlanNode{Op: "msql", Detail: mode}
	var walk func(stmts []dol.Stmt)
	walk = func(stmts []dol.Stmt) {
		for _, st := range stmts {
			switch st := st.(type) {
			case *dol.TaskStmt:
				tm := byName[st.Name]
				detail := st.Name
				if tm.Entry.Name != "" {
					detail = fmt.Sprintf("%s %s on %s", st.Name, roleName(tm.Role), tm.Entry.Name)
					if tm.Entry.Database != "" && tm.Entry.Database != tm.Entry.Name {
						detail += " (" + tm.Entry.Database + ")"
					}
					if tm.Entry.Vital {
						detail += " VITAL"
					}
					if tm.Comp {
						detail += " COMP"
					}
				}
				node := &obs.PlanNode{Op: "task", Detail: detail}
				if out != nil {
					node.Detail += " status=" + out.TaskStatus(st.Name).String()
					node.Analyzed = true
					node.Loops = 1
					if info := out.Tasks[st.Name]; info != nil {
						node.TimeNS = info.Elapsed.Nanoseconds()
						if info.Result != nil {
							node.Rows = int64(len(info.Result.Rows))
						}
						if info.Plan != nil {
							node.PageHits = info.Plan.PageHits
							node.PageMisses = info.Plan.PageMisses
							node.Children = append(node.Children, info.Plan)
						}
					}
				}
				for _, body := range st.Body {
					// Site-local EXPLAIN wrappers are represented by their
					// grafted subtree; everything else (temp-table DDL,
					// cleanup DROPs) is listed as shipped SQL text.
					if _, ok := body.(*sqlparser.ExplainStmt); ok {
						continue
					}
					if _, ok := body.(*sqlparser.SelectStmt); ok && out != nil {
						continue
					}
					node.Children = append(node.Children, &obs.PlanNode{
						Op: "sql", Detail: sqlparser.Deparse(body),
					})
				}
				root.Add(node)
			case *dol.ShipStmt:
				cols := make([]string, len(st.Columns))
				for i, c := range st.Columns {
					cols[i] = c.Name
				}
				root.Add(&obs.PlanNode{
					Op:     "ship",
					Detail: fmt.Sprintf("%s -> %s.%s(%s)", st.Task, st.To, st.Table, strings.Join(cols, ", ")),
				})
			case *dol.IfStmt:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(prog.Stmts)
	for _, sk := range meta.Skipped {
		root.Add(&obs.PlanNode{Op: "skipped", Detail: sk.Entry.Name + ": " + sk.Reason})
	}
	return root
}
