package core

import (
	"context"
	"fmt"
	"time"

	"msql/internal/catalog"
	"msql/internal/dol"
	"msql/internal/dolengine"
	"msql/internal/msqlparser"
	"msql/internal/obs"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
	"msql/internal/translate"
)

// Session is one client's script-execution context on a shared
// Federation: the USE scope, LET bindings, the pending transaction unit,
// and trigger re-entrancy state travel with the session while the
// directories, LAM clients, DOL engine, and coordinator journal are
// shared. Independent sessions execute concurrently — the engine runs
// their plans in parallel and the journal group-commits their decisions
// — but a single Session must be used from one goroutine at a time (or
// externally serialized, as the coordinator server does per
// connection).
type Session struct {
	f      *Federation
	tenant string

	scope     []semvar.ScopeEntry
	lets      []msqlparser.LetBinding
	unit      []translate.UnitQuery
	inTrigger bool
}

// Federation returns the federation the session executes against.
func (s *Session) Federation() *Federation { return s.f }

// Tenant returns the session's admission-control identity.
func (s *Session) Tenant() string { return s.tenant }

// Scope returns the current USE scope.
func (s *Session) Scope() []semvar.ScopeEntry {
	return append([]semvar.ScopeEntry(nil), s.scope...)
}

// ExecScript parses and executes an MSQL script, returning one Result
// per produced outcome (statements and synchronization points).
// Execution stops at the first error; results produced so far are
// returned.
func (s *Session) ExecScript(src string) ([]*Result, error) {
	return s.ExecScriptContext(context.Background(), src)
}

// ExecScriptContext is ExecScript under a context: the deadline bounds
// every remote LAM call the script makes, and cancellation fails
// in-flight subqueries. In-doubt resolution after a lost connection runs
// on its own bounded budget (the engine's recovery policy), not ctx —
// commit/rollback decisions for prepared participants must be delivered
// even when the script deadline has expired.
//
// When the federation has an admission controller, each statement (and
// the end-of-script synchronization) first acquires an execution slot
// under the session's tenant; saturation surfaces as an error wrapping
// admit.ErrOverload before any site is touched. A federation StmtTimeout
// additionally bounds each statement's execution.
func (s *Session) ExecScriptContext(ctx context.Context, src string) ([]*Result, error) {
	f := s.f
	// Each script call gets one trace unless the caller already opened
	// one; spans from every layer below (translate, plan, engine tasks,
	// wire calls, 2PC phases) accumulate in it.
	trace := obs.TraceFrom(ctx)
	if trace == nil && f.Tracer != nil {
		trace = f.Tracer.Start("script")
		ctx = obs.WithTrace(ctx, trace)
		defer trace.Finish()
	}

	psp, _ := obs.StartSpan(ctx, "parse", obs.KindParse)
	script, err := msqlparser.Parse(src)
	psp.EndErr(err)
	if err != nil {
		return nil, err
	}
	var results []*Result
	add := func(elapsed time.Duration, rs ...*Result) {
		for _, r := range rs {
			if r != nil {
				if r.Elapsed == 0 {
					r.Elapsed = elapsed
				}
				r.TraceID = trace.ID()
				results = append(results, r)
			}
		}
	}
	for _, stmt := range script.Stmts {
		if f.draining() {
			// Stop at a statement boundary: synchronize what is pending so
			// no unit is abandoned inside the prepared-to-commit window,
			// then report the drain.
			start := time.Now()
			r, ferr := s.gatedFlush(ctx)
			add(time.Since(start), r)
			if ferr != nil {
				return results, ferr
			}
			return results, ErrDrained
		}
		verb := verbOf(stmt)
		qid := obs.DefaultQueries.Begin(obs.QueryRecord{
			TraceID: trace.ID(),
			Tenant:  s.tenant,
			Verb:    verb,
			SQL:     stmtText(stmt),
		})
		ssp, sctx := obs.StartSpan(ctx, "stmt:"+verb, obs.KindStatement)
		sctx = obs.WithQueryID(sctx, qid)
		start := time.Now()
		rs, err := s.admitted(sctx, func(actx context.Context) ([]*Result, error) {
			return s.execStmt(actx, stmt)
		})
		ssp.EndErr(err)
		elapsed := time.Since(start)
		mStatements.With(verb).Inc()
		mStmtLatency.With(tenantLabel(s.tenant), verb).Observe(elapsed.Seconds())
		var plan *obs.PlanNode
		for _, r := range rs {
			if r != nil && r.Plan != nil {
				plan = r.Plan
			}
		}
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		if rec, ok := obs.DefaultQueries.Finish(qid, elapsed, plan, errMsg); ok {
			obs.SlowLog().Observe(&rec)
		}
		add(elapsed, rs...)
		if err != nil {
			return results, err
		}
	}
	// The end-of-script synchronization is where queued DML actually runs
	// (and where the journal assigns its MTID), so it gets its own entry
	// in the query inventory and the slow-query log.
	var qid uint64
	if len(s.unit) > 0 {
		qid = obs.DefaultQueries.Begin(obs.QueryRecord{
			TraceID: trace.ID(),
			Tenant:  s.tenant,
			Verb:    "sync",
			SQL:     fmt.Sprintf("SYNCHRONIZE (%d queued statements)", len(s.unit)),
		})
		ctx = obs.WithQueryID(ctx, qid)
	}
	start := time.Now()
	r, err := s.gatedFlush(ctx)
	elapsed := time.Since(start)
	if qid != 0 {
		mStmtLatency.With(tenantLabel(s.tenant), "sync").Observe(elapsed.Seconds())
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		if rec, ok := obs.DefaultQueries.Finish(qid, elapsed, nil, errMsg); ok {
			obs.SlowLog().Observe(&rec)
		}
	}
	add(elapsed, r)
	return results, err
}

// admitted runs fn under an admission slot (when a controller is
// installed) and the federation's statement timeout (when set). The
// slot is held for the statement's full execution, including any
// synchronization point it triggers.
func (s *Session) admitted(ctx context.Context, fn func(context.Context) ([]*Result, error)) ([]*Result, error) {
	release, err := s.f.admitCtl().Acquire(ctx, s.tenant)
	if err != nil {
		return nil, err
	}
	defer release()
	if t := s.f.StmtTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	return fn(ctx)
}

// gatedFlush is flush behind the admission gate — the end-of-script
// synchronization competes for capacity like any statement.
func (s *Session) gatedFlush(ctx context.Context) (*Result, error) {
	if len(s.unit) == 0 {
		return nil, nil
	}
	rs, err := s.admitted(ctx, func(actx context.Context) ([]*Result, error) {
		r, err := s.flush(actx)
		return resultList(r), err
	})
	if len(rs) > 0 {
		return rs[0], err
	}
	return nil, err
}

// execStmt executes one statement, returning zero or more results (a
// statement that triggers a synchronization point yields the sync result
// first).
func (s *Session) execStmt(ctx context.Context, stmt msqlparser.Stmt) ([]*Result, error) {
	f := s.f
	switch st := stmt.(type) {
	case *msqlparser.UseStmt:
		sync, err := s.flush(ctx)
		if err != nil {
			return resultList(sync), err
		}
		entries, err := f.expandScope(semvar.ScopeFromUse(st))
		if err != nil {
			return resultList(sync), err
		}
		if st.Current {
			s.scope = dedupeScope(append(s.scope, entries...))
		} else {
			s.scope = dedupeScope(entries)
		}
		s.lets = nil
		return resultList(sync), nil

	case *msqlparser.LetStmt:
		s.lets = append(s.lets, st.Bindings...)
		return nil, nil

	case *msqlparser.QueryStmt:
		return s.execQuery(ctx, st)

	case *msqlparser.ExplainStmt:
		// Like a SELECT, EXPLAIN executes immediately without forcing a
		// synchronization of the pending unit.
		r, err := s.execExplain(ctx, st)
		return resultList(r), err

	case *msqlparser.CommitStmt:
		r, err := s.sync(ctx, translate.SyncCommit)
		return resultList(r), err

	case *msqlparser.RollbackStmt:
		r, err := s.sync(ctx, translate.SyncRollback)
		return resultList(r), err

	case *msqlparser.MultiTxStmt:
		sync, err := s.flush(ctx)
		if err != nil {
			return resultList(sync), err
		}
		r, err := s.execMultiTx(ctx, st)
		return resultList(sync, r), err

	case *msqlparser.IncorporateStmt:
		entry := catalog.ServiceEntry{
			Name:           st.Service,
			Site:           st.Site,
			Connect:        st.Connect,
			AutoCommitOnly: st.AutoCommitOnly,
			DDLCommit:      st.DDLCommit,
		}
		if err := f.checkIncorporate(ctx, &entry); err != nil {
			return nil, err
		}
		f.AD.Incorporate(entry)
		return resultList(&Result{Kind: KindIncorporate}), nil

	case *msqlparser.ImportStmt:
		client, err := f.clientFor(st.Service)
		if err != nil {
			return nil, err
		}
		spec := catalog.ImportSpec{Table: st.Table, View: st.View, Columns: st.Columns}
		if err := catalog.ImportDatabase(ctx, f.GDD, f.AD, client, st.Database, st.Service, spec); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindImport}), nil

	case *msqlparser.CreateMultidatabaseStmt:
		if err := f.GDD.DefineMultidatabase(st.Name, st.Members); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.DropMultidatabaseStmt:
		if err := f.GDD.DropMultidatabase(st.Name); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.CreateMultiviewStmt:
		if len(s.scope) == 0 {
			return nil, fmt.Errorf("core: CREATE MULTIVIEW captures the current scope — issue USE first")
		}
		f.defineMultiview(st.Name, &storedView{
			scope: append([]semvar.ScopeEntry(nil), s.scope...),
			lets:  append([]msqlparser.LetBinding(nil), s.lets...),
			body:  st.Body,
		})
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.DropMultiviewStmt:
		if err := f.dropMultiview(st.Name); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.CreateTriggerStmt:
		if len(s.scope) == 0 {
			return nil, fmt.Errorf("core: CREATE TRIGGER captures the current scope — issue USE first")
		}
		f.defineTrigger(st.Name, &storedTrigger{
			name:     st.Name,
			database: st.Database,
			event:    st.Event,
			scope:    append([]semvar.ScopeEntry(nil), s.scope...),
			lets:     append([]msqlparser.LetBinding(nil), s.lets...),
			query:    st.Body,
		})
		return resultList(&Result{Kind: KindNoop}), nil

	case *msqlparser.DropTriggerStmt:
		if err := f.dropTrigger(st.Name); err != nil {
			return nil, err
		}
		return resultList(&Result{Kind: KindNoop}), nil

	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, stmt)
	}
}

// execQuery routes one manipulation statement.
func (s *Session) execQuery(ctx context.Context, q *msqlparser.QueryStmt) ([]*Result, error) {
	f := s.f
	switch q.Body.(type) {
	case *sqlparser.CreateDatabaseStmt, *sqlparser.DropDatabaseStmt:
		return nil, fmt.Errorf("%w: CREATE/DROP DATABASE — create the database on its service and IMPORT it", ErrUnsupported)
	}
	if sel, ok := q.Body.(*sqlparser.SelectStmt); ok {
		if view := f.matchMultiview(sel); view != nil {
			r, err := s.execStoredSelect(ctx, view)
			return resultList(r), err
		}
		r, err := s.execSelect(ctx, q)
		return resultList(r), err
	}
	if len(s.scope) == 0 {
		return nil, translate.ErrNoScope
	}
	if semvar.IsGlobalQuery(q.Body, s.scope) {
		// Cross-database DML forms its own unit.
		sync, err := s.flush(ctx)
		if err != nil {
			return resultList(sync), err
		}
		r, err := s.execGlobalDML(ctx, q)
		return resultList(sync, r), err
	}
	s.unit = append(s.unit, translate.UnitQuery{
		Lets:  append([]msqlparser.LetBinding(nil), s.lets...),
		Query: q,
	})
	return nil, nil
}

// Flush synchronizes the pending unit in commit mode. It returns nil
// when nothing is pending.
func (s *Session) Flush() (*Result, error) {
	return s.flush(context.Background())
}

func (s *Session) flush(ctx context.Context) (*Result, error) {
	if len(s.unit) == 0 {
		return nil, nil
	}
	return s.sync(ctx, translate.SyncCommit)
}

// sync translates and runs the pending unit.
func (s *Session) sync(ctx context.Context, mode translate.SyncMode) (*Result, error) {
	f := s.f
	unit := s.unit
	s.unit = nil
	if len(unit) == 0 {
		return nil, nil
	}
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateUnit(s.scope, unit, mode)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindSync, DOL: printPlan(ctx, prog), Skipped: meta.Skipped, Mode: mode}
	if f.DryRun {
		f.dropProvisional(meta, nil)
		return res, nil
	}
	out, err := f.runPlan(ctx, "sync", prog, meta)
	if err != nil {
		f.dropProvisional(meta, out)
		return res, err
	}
	f.dropProvisional(meta, out)
	f.fillFromOutcome(res, meta, out)
	mUnitOutcomes.With(res.State.String()).Inc()
	f.maintainGDD(meta, out)
	if err := s.fireTriggers(ctx, res, meta, out); err != nil {
		return res, err
	}
	return res, nil
}

// fireTriggers runs interdatabase triggers matching committed
// manipulation subqueries of a synchronized unit. Triggers do not fire
// recursively.
func (s *Session) fireTriggers(ctx context.Context, res *Result, meta *translate.Meta, out *dolengine.Outcome) error {
	f := s.f
	triggers := f.triggerSnapshot()
	if s.inTrigger || len(triggers) == 0 {
		return nil
	}
	eventOf := func(st sqlparser.Statement) string {
		switch st.(type) {
		case *sqlparser.UpdateStmt:
			return "UPDATE"
		case *sqlparser.InsertStmt:
			return "INSERT"
		case *sqlparser.DeleteStmt:
			return "DELETE"
		case *sqlparser.CreateTableStmt, *sqlparser.CreateViewStmt:
			return "CREATE"
		case *sqlparser.DropTableStmt, *sqlparser.DropViewStmt:
			return "DROP"
		default:
			return ""
		}
	}
	fired := map[string]bool{}
	for _, tm := range meta.Tasks {
		if tm.Role != translate.RoleWrite && tm.Role != translate.RoleFinal {
			continue
		}
		if out.TaskStatus(tm.Name) != dol.StatusCommitted {
			continue
		}
		ev := eventOf(tm.Stmt)
		for name, trig := range triggers {
			if fired[name] || trig.event != ev {
				continue
			}
			if trig.database != tm.Entry.Database && trig.database != tm.Entry.Name {
				continue
			}
			fired[name] = true
			s.inTrigger = true
			_, _, terr := func() (*dol.Program, *translate.Meta, error) {
				prog, tmeta, err := f.tctx.TranslateUnit(trig.scope,
					[]translate.UnitQuery{{Lets: trig.lets, Query: trig.query}}, translate.SyncCommit)
				if err != nil {
					return nil, nil, err
				}
				_, err = f.runPlan(ctx, "trigger", prog, tmeta)
				return prog, tmeta, err
			}()
			s.inTrigger = false
			if terr != nil {
				return fmt.Errorf("core: trigger %s: %w", name, terr)
			}
			res.TriggersFired = append(res.TriggersFired, name)
		}
	}
	return nil
}

// execStoredSelect executes a multiview's captured multiple query.
func (s *Session) execStoredSelect(ctx context.Context, view *storedView) (*Result, error) {
	f := s.f
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(view.scope, view.lets, &msqlparser.QueryStmt{Body: view.body})
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindSelect, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	esp, ectx := obs.StartSpan(ctx, "execute:select", obs.KindEngine)
	out, err := f.engine.Run(ectx, prog)
	esp.EndErr(err)
	if err != nil {
		return res, err
	}
	f.assembleMultitable(res, meta, out)
	return res, nil
}

// execSelect runs a retrieval query immediately and assembles the
// multitable.
func (s *Session) execSelect(ctx context.Context, q *msqlparser.QueryStmt) (*Result, error) {
	f := s.f
	if len(s.scope) == 0 {
		return nil, translate.ErrNoScope
	}
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(s.scope, s.lets, q)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindSelect, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	esp, ectx := obs.StartSpan(ctx, "execute:select", obs.KindEngine)
	out, err := f.engine.Run(ectx, prog)
	esp.EndErr(err)
	if err != nil {
		return res, err
	}
	if err := f.assembleMultitable(res, meta, out); err != nil {
		return res, err
	}
	return res, nil
}

// execGlobalDML runs a cross-database manipulation statement as its own
// unit.
func (s *Session) execGlobalDML(ctx context.Context, q *msqlparser.QueryStmt) (*Result, error) {
	f := s.f
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateQuery(s.scope, s.lets, q)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindGlobalDML, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	out, err := f.runPlan(ctx, "dml", prog, meta)
	if err != nil {
		return res, err
	}
	f.fillFromOutcome(res, meta, out)
	mUnitOutcomes.With(res.State.String()).Inc()
	f.maintainGDD(meta, out)
	if err := s.fireTriggers(ctx, res, meta, out); err != nil {
		return res, err
	}
	return res, nil
}

// execMultiTx runs a multitransaction.
func (s *Session) execMultiTx(ctx context.Context, m *msqlparser.MultiTxStmt) (*Result, error) {
	f := s.f
	tsp, _ := obs.StartSpan(ctx, "translate", obs.KindTranslate)
	prog, meta, err := f.tctx.TranslateMultiTx(m)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindMultiTx, DOL: printPlan(ctx, prog), Skipped: meta.Skipped}
	if f.DryRun {
		return res, nil
	}
	out, err := f.runPlan(ctx, "multitx", prog, meta)
	if err != nil {
		return res, err
	}
	f.fillFromOutcome(res, meta, out)
	if res.Status >= 0 && res.Status < len(meta.AcceptableStates) {
		res.AchievedState = meta.AcceptableStates[res.Status]
		res.State = StateSuccess
	} else {
		res.State = StateAborted
	}
	mUnitOutcomes.With(res.State.String()).Inc()
	return res, nil
}
