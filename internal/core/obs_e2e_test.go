package core

import (
	"context"
	"strings"
	"testing"

	"msql/internal/obs"
)

// TestObservabilityEndToEnd is the acceptance check for the tracing
// plane: a vital update executed through ExecScriptContext against two
// real TCP LAM sites must yield one trace whose spans cover parse →
// translate → plan → per-site wire calls → 2PC phases, with correlated
// server-side spans (the servers share the process-default tracer, so
// their serve spans land inside the live trace), and /metrics must
// report nonzero per-site call latency histograms for the same run.
func TestObservabilityEndToEnd(t *testing.T) {
	fed, _ := tcpFederation(t)
	fed.Tracer = obs.DefaultTracer // explicit: servers record into the same tracer

	results, err := fed.ExecScriptContext(context.Background(), `
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateSuccess {
		t.Fatalf("state = %s", sync.State)
	}
	if sync.TraceID == "" {
		t.Fatal("result carries no trace id")
	}
	if sync.Elapsed <= 0 {
		t.Fatalf("result elapsed = %v", sync.Elapsed)
	}

	ts := obs.DefaultTracer.ByID(sync.TraceID)
	if ts == nil {
		t.Fatalf("no trace %s in the ring buffer", sync.TraceID)
	}
	if !ts.Finished {
		t.Fatal("trace not finished")
	}

	kinds := map[string]int{}
	sites := map[string]bool{}
	twoPC := map[string]bool{}
	serverCorrelated := 0
	spanByID := map[uint64]obs.SpanSnapshot{}
	for _, s := range ts.Spans {
		spanByID[s.ID] = s
	}
	for _, s := range ts.Spans {
		kinds[s.Kind]++
		if s.Kind == obs.KindCall {
			sites[s.Attrs["site"]] = true
		}
		if s.Kind == obs.Kind2PC {
			switch {
			case strings.HasPrefix(s.Name, "prepare:"):
				twoPC["prepare"] = true
			case strings.HasPrefix(s.Name, "commit:"):
				twoPC["commit"] = true
			case s.Name == "2pc:decision":
				twoPC["decision"] = true
			}
		}
		if s.Kind == obs.KindServer {
			if parent, ok := spanByID[s.Parent]; ok && parent.Kind == obs.KindCall {
				serverCorrelated++
			}
		}
	}
	for _, kind := range []string{
		obs.KindParse, obs.KindStatement, obs.KindTranslate, obs.KindPlan,
		obs.KindEngine, obs.KindTask, obs.KindCall, obs.Kind2PC, obs.KindServer,
	} {
		if kinds[kind] == 0 {
			t.Fatalf("trace has no %s span; kinds = %v\n%s", kind, kinds, obs.FormatTrace(ts))
		}
	}
	if len(sites) != 2 {
		t.Fatalf("call spans cover sites %v, want both TCP sites", sites)
	}
	for _, phase := range []string{"prepare", "decision", "commit"} {
		if !twoPC[phase] {
			t.Fatalf("trace has no 2PC %s span\n%s", phase, obs.FormatTrace(ts))
		}
	}
	if serverCorrelated == 0 {
		t.Fatal("no server-side span is parented under a coordinator call span")
	}

	// The /metrics text must report nonzero per-site call latency for the
	// same two sites.
	var b strings.Builder
	obs.Default().WritePrometheus(&b)
	metrics := b.String()
	for site := range sites {
		want := `msql_site_call_seconds_count{site="` + site + `"`
		found := false
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, want) && !strings.HasSuffix(line, " 0") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("/metrics has no nonzero call latency for site %s", site)
		}
	}
}

// TestTraceIDSharedAcrossScriptResults checks that every result of one
// ExecScriptContext call carries the same trace id (one trace per script).
func TestTraceIDSharedAcrossScriptResults(t *testing.T) {
	fed, _ := tcpFederation(t)
	fed.Tracer = obs.NewTracer(4)
	results, err := fed.ExecScriptContext(context.Background(), `
USE continental united
SELECT flnu% FROM flight%
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	id := results[0].TraceID
	if id == "" {
		t.Fatal("empty trace id")
	}
	for _, r := range results {
		if r.TraceID != id {
			t.Fatalf("trace ids differ: %s vs %s", r.TraceID, id)
		}
	}
	if fed.Tracer.ByID(id) == nil {
		t.Fatal("trace not in the federation's tracer")
	}
}
