package dol

import (
	"fmt"
	"strconv"

	"msql/internal/sqlparser"
)

// Parse parses a DOL program.
func Parse(src string) (*Program, error) {
	p, err := sqlparser.NewParser(src)
	if err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("DOLBEGIN"); err != nil {
		return nil, err
	}
	prog := &Program{}
	for {
		p.SkipSemicolons()
		if p.AcceptKeyword("DOLEND") {
			p.SkipSemicolons()
			if !p.AtEOF() {
				return nil, fmt.Errorf("dol: trailing input after DOLEND: %s", p.Peek())
			}
			return prog, nil
		}
		if p.AtEOF() {
			return nil, fmt.Errorf("dol: missing DOLEND")
		}
		s, err := parseStmt(p)
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
}

func parseStmt(p *sqlparser.Parser) (Stmt, error) {
	switch {
	case p.AcceptKeyword("OPEN"):
		db, err := p.Ident()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("AT"); err != nil {
			return nil, err
		}
		t := p.Peek()
		if t.Kind != sqlparser.TokIdent && t.Kind != sqlparser.TokString {
			return nil, fmt.Errorf("dol: expected site, found %s", t)
		}
		site := p.Next().Text
		if err := p.ExpectKeyword("AS"); err != nil {
			return nil, err
		}
		alias, err := p.Ident()
		if err != nil {
			return nil, err
		}
		return &OpenStmt{Database: db, Site: site, Alias: alias}, nil

	case p.AcceptKeyword("TASK"):
		return parseTask(p)

	case p.AcceptKeyword("SHIP"):
		task, err := p.Ident()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.Ident()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.Ident()
		if err != nil {
			return nil, err
		}
		ship := &ShipStmt{Task: task, To: to, Table: name}
		if err := p.ExpectPunct("("); err != nil {
			return nil, err
		}
		// Reuse the SQL column definition grammar via a tiny re-parse.
		for {
			colName, err := p.Ident()
			if err != nil {
				return nil, err
			}
			typeTok := p.Peek()
			if typeTok.Kind != sqlparser.TokIdent {
				return nil, fmt.Errorf("dol: expected column type, found %s", typeTok)
			}
			p.Next()
			def, err := columnDefFrom(colName, typeTok.Text, p)
			if err != nil {
				return nil, err
			}
			ship.Columns = append(ship.Columns, def)
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return ship, nil

	case p.AcceptKeyword("IF"):
		cond, err := parseCond(p)
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("THEN"); err != nil {
			return nil, err
		}
		thenStmts, err := parseBlock(p)
		if err != nil {
			return nil, err
		}
		ifs := &IfStmt{Cond: cond, Then: thenStmts}
		p.SkipSemicolons()
		if p.AcceptKeyword("ELSE") {
			elseStmts, err := parseBlock(p)
			if err != nil {
				return nil, err
			}
			ifs.Else = elseStmts
		}
		return ifs, nil

	case p.AcceptKeyword("COMMIT"):
		tasks, err := identList(p)
		if err != nil {
			return nil, err
		}
		return &CommitStmt{Tasks: tasks}, nil

	case p.AcceptKeyword("ABORT"):
		tasks, err := identList(p)
		if err != nil {
			return nil, err
		}
		return &AbortStmt{Tasks: tasks}, nil

	case p.AcceptKeyword("DOLSTATUS"):
		if err := p.ExpectPunct("="); err != nil {
			return nil, err
		}
		t := p.Next()
		if t.Kind != sqlparser.TokNumber {
			return nil, fmt.Errorf("dol: expected status code, found %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("dol: bad status code %q", t.Text)
		}
		return &StatusStmt{Code: n}, nil

	case p.AcceptKeyword("CLOSE"):
		var aliases []string
		for p.Peek().Kind == sqlparser.TokIdent {
			aliases = append(aliases, p.Next().Text)
		}
		if len(aliases) == 0 {
			return nil, fmt.Errorf("dol: CLOSE requires at least one connection")
		}
		return &CloseStmt{Aliases: aliases}, nil

	default:
		return nil, fmt.Errorf("dol: unexpected token %s", p.Peek())
	}
}

func columnDefFrom(name, typeName string, p *sqlparser.Parser) (sqlparser.ColumnDef, error) {
	def := sqlparser.ColumnDef{Name: name}
	switch {
	case isType(typeName, "INT", "INTEGER", "SMALLINT", "BIGINT"):
		def.Type = kindInt
	case isType(typeName, "FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL"):
		def.Type = kindFloat
	case isType(typeName, "CHAR", "VARCHAR", "TEXT", "STRING"):
		def.Type = kindString
	case isType(typeName, "BOOL", "BOOLEAN"):
		def.Type = kindBool
	default:
		return def, fmt.Errorf("dol: unsupported column type %q", typeName)
	}
	if p.AcceptPunct("(") {
		t := p.Next()
		if t.Kind != sqlparser.TokNumber {
			return def, fmt.Errorf("dol: expected width, found %s", t)
		}
		w, err := strconv.Atoi(t.Text)
		if err != nil {
			return def, err
		}
		def.Width = w
		if err := p.ExpectPunct(")"); err != nil {
			return def, err
		}
	}
	return def, nil
}

func parseTask(p *sqlparser.Parser) (*TaskStmt, error) {
	name, err := p.Ident()
	if err != nil {
		return nil, err
	}
	task := &TaskStmt{Name: name}
	if p.AcceptKeyword("NOCOMMIT") {
		task.NoCommit = true
	}
	if p.AcceptKeyword("AFTER") {
		for p.Peek().Kind == sqlparser.TokIdent && !p.PeekKeyword("FOR") {
			task.After = append(task.After, p.Next().Text)
		}
	}
	if err := p.ExpectKeyword("FOR"); err != nil {
		return nil, err
	}
	task.Conn, err = p.Ident()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectPunct("{"); err != nil {
		return nil, err
	}
	for !p.PeekPunct("}") {
		if p.AtEOF() {
			return nil, fmt.Errorf("dol: unterminated task body in %s", name)
		}
		p.SkipSemicolons()
		if p.PeekPunct("}") {
			break
		}
		stmt, err := p.ParseStatement()
		if err != nil {
			return nil, fmt.Errorf("dol: task %s body: %w", name, err)
		}
		task.Body = append(task.Body, stmt)
	}
	if err := p.ExpectPunct("}"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("ENDTASK"); err != nil {
		return nil, err
	}
	return task, nil
}

// parseBlock parses BEGIN stmts END or a single statement.
func parseBlock(p *sqlparser.Parser) ([]Stmt, error) {
	if !p.AcceptKeyword("BEGIN") {
		s, err := parseStmt(p)
		if err != nil {
			return nil, err
		}
		return []Stmt{s}, nil
	}
	var out []Stmt
	for {
		p.SkipSemicolons()
		if p.AcceptKeyword("END") {
			return out, nil
		}
		if p.AtEOF() {
			return nil, fmt.Errorf("dol: unterminated block")
		}
		s, err := parseStmt(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// parseCond parses OR-level conditions.
func parseCond(p *sqlparser.Parser) (Cond, error) {
	l, err := parseCondAnd(p)
	if err != nil {
		return nil, err
	}
	for p.AcceptKeyword("OR") {
		r, err := parseCondAnd(p)
		if err != nil {
			return nil, err
		}
		l = &OrCond{L: l, R: r}
	}
	return l, nil
}

func parseCondAnd(p *sqlparser.Parser) (Cond, error) {
	l, err := parseCondPrimary(p)
	if err != nil {
		return nil, err
	}
	for p.AcceptKeyword("AND") {
		r, err := parseCondPrimary(p)
		if err != nil {
			return nil, err
		}
		l = &AndCond{L: l, R: r}
	}
	return l, nil
}

func parseCondPrimary(p *sqlparser.Parser) (Cond, error) {
	if p.AcceptKeyword("NOT") {
		x, err := parseCondPrimary(p)
		if err != nil {
			return nil, err
		}
		return &NotCond{X: x}, nil
	}
	if err := p.ExpectPunct("("); err != nil {
		return nil, err
	}
	// Either a nested condition or task=status.
	if p.PeekPunct("(") || p.PeekKeyword("NOT") {
		c, err := parseCond(p)
		if err != nil {
			return nil, err
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	test, err := parseStatusTest(p)
	if err != nil {
		return nil, err
	}
	cond := test
	// Allow (T1=P AND T2=C) inside one pair of parens.
	for {
		switch {
		case p.AcceptKeyword("AND"):
			r, err := parseCondInner(p)
			if err != nil {
				return nil, err
			}
			cond = &AndCond{L: cond, R: r}
		case p.AcceptKeyword("OR"):
			r, err := parseCondInner(p)
			if err != nil {
				return nil, err
			}
			cond = &OrCond{L: cond, R: r}
		default:
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return cond, nil
		}
	}
}

// parseCondInner parses either a parenthesized condition or a bare
// task=status / task>rows test (the form used inside grouped
// parentheses).
func parseCondInner(p *sqlparser.Parser) (Cond, error) {
	if p.PeekPunct("(") || p.PeekKeyword("NOT") {
		return parseCondPrimary(p)
	}
	return parseStatusTest(p)
}

// parseStatusTest parses a bare test: task=STATUS or task>rows.
func parseStatusTest(p *sqlparser.Parser) (Cond, error) {
	task, err := p.Ident()
	if err != nil {
		return nil, err
	}
	switch {
	case p.AcceptPunct("="):
		letter, err := p.Ident()
		if err != nil {
			return nil, err
		}
		status, err := StatusFromLetter(letter)
		if err != nil {
			return nil, err
		}
		return &StatusCond{Task: task, Status: status}, nil
	case p.AcceptPunct(">"):
		t := p.Next()
		if t.Kind != sqlparser.TokNumber {
			return nil, fmt.Errorf("dol: expected row count after >, found %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("dol: bad row count %q", t.Text)
		}
		return &RowsCond{Task: task, MinRows: n}, nil
	default:
		return nil, fmt.Errorf("dol: expected = or > after %s, found %s", task, p.Peek())
	}
}

func identList(p *sqlparser.Parser) ([]string, error) {
	var out []string
	for {
		id, err := p.Ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.AcceptPunct(",") {
			return out, nil
		}
	}
}
