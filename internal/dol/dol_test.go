package dol

import (
	"strings"
	"testing"
)

// paperProgram is the DOL program of Section 4.3, modulo SQL bodies.
const paperProgram = `
DOLBEGIN
OPEN continental AT site1 AS cont;
OPEN delta AT site2 AS delta;
OPEN united AT site3 AS unit;
TASK T1 NOCOMMIT FOR cont
{ UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio' }
ENDTASK;
TASK T2 FOR delta
{ UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio' }
ENDTASK;
TASK T3 NOCOMMIT FOR unit
{ UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio' }
ENDTASK;
IF (T1=P) AND (T3=P) THEN
BEGIN
COMMIT T1, T3;
DOLSTATUS=0;
END;
ELSE
BEGIN
ABORT T1, T3;
DOLSTATUS=1;
END;
CLOSE cont delta unit;
DOLEND
`

func TestParsePaperProgram(t *testing.T) {
	prog, err := Parse(paperProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 8 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	open := prog.Stmts[0].(*OpenStmt)
	if open.Database != "continental" || open.Site != "site1" || open.Alias != "cont" {
		t.Fatalf("open = %+v", open)
	}
	t1 := prog.Stmts[3].(*TaskStmt)
	if t1.Name != "T1" || !t1.NoCommit || t1.Conn != "cont" || len(t1.Body) != 1 {
		t.Fatalf("t1 = %+v", t1)
	}
	t2 := prog.Stmts[4].(*TaskStmt)
	if t2.NoCommit {
		t.Fatal("T2 must be an autocommit task")
	}
	ifs := prog.Stmts[6].(*IfStmt)
	and, ok := ifs.Cond.(*AndCond)
	if !ok {
		t.Fatalf("cond = %T", ifs.Cond)
	}
	sc := and.L.(*StatusCond)
	if sc.Task != "T1" || sc.Status != StatusPrepared {
		t.Fatalf("cond.L = %+v", sc)
	}
	if len(ifs.Then) != 2 || len(ifs.Else) != 2 {
		t.Fatalf("branches = %d/%d", len(ifs.Then), len(ifs.Else))
	}
	commit := ifs.Then[0].(*CommitStmt)
	if len(commit.Tasks) != 2 || commit.Tasks[1] != "T3" {
		t.Fatalf("commit = %+v", commit)
	}
	if ifs.Then[1].(*StatusStmt).Code != 0 || ifs.Else[1].(*StatusStmt).Code != 1 {
		t.Fatal("status codes wrong")
	}
	cl := prog.Stmts[7].(*CloseStmt)
	if len(cl.Aliases) != 3 {
		t.Fatalf("close = %+v", cl)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog, err := Parse(paperProgram)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Print(prog)
	prog2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out1)
	}
	out2 := Print(prog2)
	if out1 != out2 {
		t.Fatalf("print not stable:\n%s\n---\n%s", out1, out2)
	}
	for _, want := range []string{
		"OPEN continental AT site1 AS cont;",
		"TASK T1 NOCOMMIT FOR cont",
		"IF (T1=P) AND (T3=P) THEN",
		"COMMIT T1, T3;",
		"DOLSTATUS=0;",
		"CLOSE cont delta unit;",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("printed program missing %q:\n%s", want, out1)
		}
	}
}

func TestParseShipAndAfter(t *testing.T) {
	src := `
DOLBEGIN
OPEN avis AT svc4 AS a;
OPEN national AT svc5 AS n;
TASK T1 FOR n
{ SELECT vcode FROM vehicle }
ENDTASK;
SHIP T1 TO a TABLE mtmp_x (vcode INTEGER, vty CHAR(20), price FLOAT, ok BOOLEAN);
TASK T2 AFTER T1 FOR a
{ INSERT INTO cars (code) SELECT vcode FROM mtmp_x }
ENDTASK;
CLOSE a n;
DOLEND
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ship := prog.Stmts[3].(*ShipStmt)
	if ship.Task != "T1" || ship.To != "a" || ship.Table != "mtmp_x" || len(ship.Columns) != 4 {
		t.Fatalf("ship = %+v", ship)
	}
	if ship.Columns[1].Width != 20 {
		t.Fatalf("col width = %d", ship.Columns[1].Width)
	}
	t2 := prog.Stmts[4].(*TaskStmt)
	if len(t2.After) != 1 || t2.After[0] != "T1" {
		t.Fatalf("after = %v", t2.After)
	}
	// Round-trip.
	out := Print(prog)
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func TestParseConditions(t *testing.T) {
	src := `
DOLBEGIN
IF (T1=C) AND (T2=A) OR NOT (T3=E) THEN
BEGIN
DOLSTATUS=2;
END;
DOLEND
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Stmts[0].(*IfStmt)
	or, ok := ifs.Cond.(*OrCond)
	if !ok {
		t.Fatalf("cond = %T", ifs.Cond)
	}
	if _, ok := or.L.(*AndCond); !ok {
		t.Fatalf("or.L = %T", or.L)
	}
	if _, ok := or.R.(*NotCond); !ok {
		t.Fatalf("or.R = %T", or.R)
	}
	tasks := TasksIn(ifs.Cond)
	if len(tasks) != 3 {
		t.Fatalf("tasks = %v", tasks)
	}
}

func TestParseGroupedCondInOneParens(t *testing.T) {
	src := "DOLBEGIN\nIF (T1=P AND T2=P) THEN BEGIN DOLSTATUS=0; END;\nDOLEND"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Stmts[0].(*IfStmt)
	if _, ok := ifs.Cond.(*AndCond); !ok {
		t.Fatalf("cond = %T", ifs.Cond)
	}
}

func TestEval(t *testing.T) {
	status := func(task string) TaskStatus {
		switch task {
		case "T1":
			return StatusCommitted
		case "T2":
			return StatusAborted
		default:
			return StatusNotRun
		}
	}
	rows := func(task string) int {
		if task == "T1" {
			return 3
		}
		return 0
	}
	c := &AndCond{
		L: &StatusCond{Task: "T1", Status: StatusCommitted},
		R: &NotCond{X: &StatusCond{Task: "T2", Status: StatusCommitted}},
	}
	if !Eval(c, status, rows) {
		t.Fatal("condition should hold")
	}
	c2 := &OrCond{
		L: &StatusCond{Task: "T1", Status: StatusAborted},
		R: &StatusCond{Task: "T2", Status: StatusAborted},
	}
	if !Eval(c2, status, rows) {
		t.Fatal("or should hold")
	}
	// Rows conditions.
	if !Eval(&RowsCond{Task: "T1", MinRows: 0}, status, rows) {
		t.Fatal("T1>0 should hold")
	}
	if Eval(&RowsCond{Task: "T2", MinRows: 0}, status, rows) {
		t.Fatal("T2>0 should not hold")
	}
	if Eval(&RowsCond{Task: "T1", MinRows: 0}, status, nil) {
		t.Fatal("nil rows func should fail closed")
	}
}

func TestParseRowsCond(t *testing.T) {
	src := "DOLBEGIN\nIF (T1=P) AND (T1>0) THEN BEGIN DOLSTATUS=0; END;\nDOLEND"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Stmts[0].(*IfStmt)
	and := ifs.Cond.(*AndCond)
	rc, ok := and.R.(*RowsCond)
	if !ok || rc.Task != "T1" || rc.MinRows != 0 {
		t.Fatalf("cond = %#v", and.R)
	}
	out := Print(prog)
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if tasks := TasksIn(ifs.Cond); len(tasks) != 1 {
		t.Fatalf("tasks = %v", tasks)
	}
}

func TestStatusLetters(t *testing.T) {
	for _, s := range []TaskStatus{StatusNotRun, StatusRunning, StatusPrepared, StatusCommitted, StatusAborted, StatusError} {
		got, err := StatusFromLetter(s.Letter())
		if err != nil || got != s {
			t.Errorf("round trip %v: %v, %v", s, got, err)
		}
	}
	if _, err := StatusFromLetter("X"); err == nil {
		t.Fatal("unknown letter should error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DOLBEGIN",
		"DOLBEGIN OPEN a AT s AS; DOLEND",
		"DOLBEGIN TASK T1 FOR c { SELECT 1 ENDTASK; DOLEND",
		"DOLBEGIN IF (T1=X) THEN BEGIN END; DOLEND",
		"DOLBEGIN CLOSE; DOLEND",
		"DOLBEGIN DOLSTATUS=x; DOLEND",
		"DOLBEGIN BOGUS; DOLEND",
		"DOLBEGIN DOLEND trailing",
		"DOLBEGIN SHIP T1 TO a TABLE t (x BLOB); DOLEND",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMultiStatementTaskBody(t *testing.T) {
	src := `
DOLBEGIN
TASK T1 FOR c
{ CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t }
ENDTASK;
DOLEND
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	task := prog.Stmts[0].(*TaskStmt)
	if len(task.Body) != 3 {
		t.Fatalf("body = %d statements", len(task.Body))
	}
}

func TestParseSingleStatementBranch(t *testing.T) {
	// IF with single-statement branches (no BEGIN/END).
	src := "DOLBEGIN\nIF (T1=P) THEN DOLSTATUS=0;\nELSE DOLSTATUS=1;\nDOLEND"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Stmts[0].(*IfStmt)
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("branches = %d/%d", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseNestedParenCond(t *testing.T) {
	src := "DOLBEGIN\nIF ((T1=P) OR (T2=C)) AND NOT (T3=A) THEN BEGIN DOLSTATUS=0; END;\nDOLEND"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(prog)
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func TestParseCondErrors(t *testing.T) {
	bad := []string{
		"DOLBEGIN\nIF (T1~P) THEN BEGIN END;\nDOLEND",
		"DOLBEGIN\nIF (T1>x) THEN BEGIN END;\nDOLEND",
		"DOLBEGIN\nIF (T1=P THEN BEGIN END;\nDOLEND",
		"DOLBEGIN\nIF T1=P THEN BEGIN END;\nDOLEND",
		"DOLBEGIN\nIF (T1=P) THEN BEGIN DOLSTATUS=0;\nDOLEND",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestShipTypeNames(t *testing.T) {
	src := "DOLBEGIN\nSHIP T1 TO a TABLE t (i INTEGER, f FLOAT, s CHAR(4), c CHAR, b BOOLEAN);\nDOLEND"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(prog)
	for _, want := range []string{"i INTEGER", "f FLOAT", "s CHAR(4)", "c CHAR", "b BOOLEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %s", want, out)
		}
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}
