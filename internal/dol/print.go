package dol

import (
	"strconv"
	"strings"

	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// type name helpers shared with the parser.
const (
	kindInt    = sqlval.KindInt
	kindFloat  = sqlval.KindFloat
	kindString = sqlval.KindString
	kindBool   = sqlval.KindBool
)

func isType(name string, candidates ...string) bool {
	for _, c := range candidates {
		if strings.EqualFold(name, c) {
			return true
		}
	}
	return false
}

// Print renders a program in the paper's listing style. The output
// reparses to an equivalent program.
func Print(p *Program) string {
	var b strings.Builder
	b.WriteString("DOLBEGIN\n")
	for _, s := range p.Stmts {
		printStmt(&b, s, 0)
	}
	b.WriteString("DOLEND\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *OpenStmt:
		b.WriteString("OPEN ")
		b.WriteString(st.Database)
		b.WriteString(" AT ")
		b.WriteString(st.Site)
		b.WriteString(" AS ")
		b.WriteString(st.Alias)
		b.WriteString(";\n")
	case *TaskStmt:
		b.WriteString("TASK ")
		b.WriteString(st.Name)
		if st.NoCommit {
			b.WriteString(" NOCOMMIT")
		}
		if len(st.After) > 0 {
			b.WriteString(" AFTER ")
			b.WriteString(strings.Join(st.After, " "))
		}
		b.WriteString(" FOR ")
		b.WriteString(st.Conn)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("{ ")
		for i, q := range st.Body {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(sqlparser.Deparse(q))
		}
		b.WriteString(" }\n")
		indent(b, depth)
		b.WriteString("ENDTASK;\n")
	case *ShipStmt:
		b.WriteString("SHIP ")
		b.WriteString(st.Task)
		b.WriteString(" TO ")
		b.WriteString(st.To)
		b.WriteString(" TABLE ")
		b.WriteString(st.Table)
		b.WriteString(" (")
		for i, c := range st.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteString(" ")
			b.WriteString(typeName(c))
		}
		b.WriteString(");\n")
	case *IfStmt:
		b.WriteString("IF ")
		b.WriteString(printCond(st.Cond))
		b.WriteString(" THEN\n")
		indent(b, depth)
		b.WriteString("BEGIN\n")
		for _, inner := range st.Then {
			printStmt(b, inner, depth+1)
		}
		indent(b, depth)
		b.WriteString("END;\n")
		if len(st.Else) > 0 {
			indent(b, depth)
			b.WriteString("ELSE\n")
			indent(b, depth)
			b.WriteString("BEGIN\n")
			for _, inner := range st.Else {
				printStmt(b, inner, depth+1)
			}
			indent(b, depth)
			b.WriteString("END;\n")
		}
	case *CommitStmt:
		b.WriteString("COMMIT ")
		b.WriteString(strings.Join(st.Tasks, ", "))
		b.WriteString(";\n")
	case *AbortStmt:
		b.WriteString("ABORT ")
		b.WriteString(strings.Join(st.Tasks, ", "))
		b.WriteString(";\n")
	case *StatusStmt:
		b.WriteString("DOLSTATUS=")
		b.WriteString(strconv.Itoa(st.Code))
		b.WriteString(";\n")
	case *CloseStmt:
		b.WriteString("CLOSE ")
		b.WriteString(strings.Join(st.Aliases, " "))
		b.WriteString(";\n")
	}
}

func typeName(c sqlparser.ColumnDef) string {
	switch c.Type {
	case kindInt:
		return "INTEGER"
	case kindFloat:
		return "FLOAT"
	case kindBool:
		return "BOOLEAN"
	default:
		if c.Width > 0 {
			return "CHAR(" + strconv.Itoa(c.Width) + ")"
		}
		return "CHAR"
	}
}

func printCond(c Cond) string {
	switch x := c.(type) {
	case *StatusCond:
		return "(" + x.Task + "=" + x.Status.Letter() + ")"
	case *RowsCond:
		return "(" + x.Task + ">" + strconv.Itoa(x.MinRows) + ")"
	case *AndCond:
		return printCond(x.L) + " AND " + printCond(x.R)
	case *OrCond:
		return "(" + printCond(x.L) + " OR " + printCond(x.R) + ")"
	case *NotCond:
		return "NOT " + printCond(x.X)
	default:
		return "?"
	}
}
