// Package dol implements the task specification language of the Narada
// environment that the paper's translator targets (§4.1, §4.3): DOL
// programs open connections to services, submit tasks carrying local SQL,
// synchronize on task execution states, and commit or abort groups of
// tasks conditionally.
//
// The syntax follows the paper's listing:
//
//	DOLBEGIN
//	OPEN continental AT site1 AS cont;
//	TASK T1 NOCOMMIT FOR cont
//	{ UPDATE flights SET rate = rate * 1.1 WHERE ... }
//	ENDTASK;
//	IF (T1=P) AND (T3=P) THEN
//	BEGIN
//	COMMIT T1, T3;
//	DOLSTATUS=0;
//	END;
//	ELSE
//	BEGIN
//	ABORT T1, T3;
//	DOLSTATUS=1;
//	END;
//	CLOSE cont delta unit;
//	DOLEND
//
// Two constructs extend the paper's listing where its prose requires
// them: TASK ... AFTER t1 t2 declares execution dependencies (data flow
// control), and SHIP moves a task's result rows into a table at another
// connection — the mechanism behind "partial results are collected in one
// database, acting as the coordinator".
package dol

import (
	"fmt"

	"msql/internal/sqlparser"
)

// TaskStatus is the execution state of a DOL task, as tested by IF
// conditions.
type TaskStatus uint8

// Task states. The single-letter spellings match the paper: P is
// prepared-to-commit, C committed, A aborted, E error, N not yet run,
// R running.
const (
	StatusNotRun TaskStatus = iota
	StatusRunning
	StatusPrepared
	StatusCommitted
	StatusAborted
	StatusError
	// StatusInDoubt marks a participant whose prepared transaction lost
	// its coordinator connection before the decision arrived (§3.2.2's
	// commit-heterogeneity window): the outcome at the server is unknown
	// until the recovery protocol resolves it.
	StatusInDoubt
)

// Letter returns the single-letter spelling used in DOL sources.
func (s TaskStatus) Letter() string {
	switch s {
	case StatusNotRun:
		return "N"
	case StatusRunning:
		return "R"
	case StatusPrepared:
		return "P"
	case StatusCommitted:
		return "C"
	case StatusAborted:
		return "A"
	case StatusError:
		return "E"
	case StatusInDoubt:
		return "D"
	default:
		return "?"
	}
}

func (s TaskStatus) String() string {
	switch s {
	case StatusNotRun:
		return "not-run"
	case StatusRunning:
		return "running"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	case StatusError:
		return "error"
	case StatusInDoubt:
		return "in-doubt"
	default:
		return fmt.Sprintf("TaskStatus(%d)", uint8(s))
	}
}

// StatusFromLetter parses a status letter.
func StatusFromLetter(s string) (TaskStatus, error) {
	switch s {
	case "N":
		return StatusNotRun, nil
	case "R":
		return StatusRunning, nil
	case "P":
		return StatusPrepared, nil
	case "C":
		return StatusCommitted, nil
	case "A":
		return StatusAborted, nil
	case "E":
		return StatusError, nil
	case "D":
		return StatusInDoubt, nil
	default:
		return 0, fmt.Errorf("dol: unknown task status %q", s)
	}
}

// Stmt is any DOL statement.
type Stmt interface{ dolStmt() }

// Program is a parsed DOL program.
type Program struct {
	Stmts []Stmt
}

// OpenStmt connects to a service: OPEN db AT site AS alias.
type OpenStmt struct {
	Database string
	Site     string // service name or address, resolved via the directory
	Alias    string
}

// TaskStmt submits local SQL to a connection. NOCOMMIT tasks are left in
// the prepared-to-commit state on success; others autocommit. AFTER names
// tasks that must settle before this one starts.
type TaskStmt struct {
	Name     string
	NoCommit bool
	After    []string
	Conn     string
	Body     []sqlparser.Statement
}

// ShipStmt moves the result rows of a task into a fresh table at a
// connection: SHIP task TO conn TABLE name (columns).
type ShipStmt struct {
	Task    string
	To      string
	Table   string
	Columns []sqlparser.ColumnDef
}

// IfStmt branches on task execution states.
type IfStmt struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// CommitStmt commits prepared tasks: COMMIT T1, T2.
type CommitStmt struct {
	Tasks []string
}

// AbortStmt rolls back tasks: ABORT T1, T2.
type AbortStmt struct {
	Tasks []string
}

// StatusStmt sets the program's return code: DOLSTATUS=0.
type StatusStmt struct {
	Code int
}

// CloseStmt closes connections: CLOSE cont delta unit.
type CloseStmt struct {
	Aliases []string
}

func (*OpenStmt) dolStmt()   {}
func (*TaskStmt) dolStmt()   {}
func (*ShipStmt) dolStmt()   {}
func (*IfStmt) dolStmt()     {}
func (*CommitStmt) dolStmt() {}
func (*AbortStmt) dolStmt()  {}
func (*StatusStmt) dolStmt() {}
func (*CloseStmt) dolStmt()  {}

// Cond is a condition over task states.
type Cond interface{ dolCond() }

// StatusCond is (T1=P).
type StatusCond struct {
	Task   string
	Status TaskStatus
}

// RowsCond is (T1>0): the task affected more than MinRows rows. Plans use
// it to require that a subquery was effective, not just committed — e.g.
// a reservation UPDATE that matched no free resource commits vacuously
// and must not satisfy an acceptable termination state.
type RowsCond struct {
	Task    string
	MinRows int
}

// AndCond is conjunction.
type AndCond struct{ L, R Cond }

// OrCond is disjunction.
type OrCond struct{ L, R Cond }

// NotCond is negation.
type NotCond struct{ X Cond }

func (*StatusCond) dolCond() {}
func (*RowsCond) dolCond()   {}
func (*AndCond) dolCond()    {}
func (*OrCond) dolCond()     {}
func (*NotCond) dolCond()    {}

// TasksIn collects the task names a condition references.
func TasksIn(c Cond) []string {
	seen := map[string]bool{}
	var out []string
	var rec func(Cond)
	rec = func(c Cond) {
		switch x := c.(type) {
		case *StatusCond:
			if !seen[x.Task] {
				seen[x.Task] = true
				out = append(out, x.Task)
			}
		case *RowsCond:
			if !seen[x.Task] {
				seen[x.Task] = true
				out = append(out, x.Task)
			}
		case *AndCond:
			rec(x.L)
			rec(x.R)
		case *OrCond:
			rec(x.L)
			rec(x.R)
		case *NotCond:
			rec(x.X)
		}
	}
	rec(c)
	return out
}

// Eval evaluates a condition against a status snapshot. rows reports a
// task's affected-row count (RowsCond); it may be nil when no RowsCond
// appears in the condition.
func Eval(c Cond, status func(task string) TaskStatus, rows func(task string) int) bool {
	switch x := c.(type) {
	case *StatusCond:
		return status(x.Task) == x.Status
	case *RowsCond:
		return rows != nil && rows(x.Task) > x.MinRows
	case *AndCond:
		return Eval(x.L, status, rows) && Eval(x.R, status, rows)
	case *OrCond:
		return Eval(x.L, status, rows) || Eval(x.R, status, rows)
	case *NotCond:
		return !Eval(x.X, status, rows)
	default:
		return false
	}
}
