// Package msqlparser parses the MSQL language of the paper: the original
// multidatabase constructs (USE scopes, LET semantic variables, multiple
// queries with '%' identifiers and '~' optional columns) plus the
// extensions the paper proposes — VITAL designators, COMP compensation
// clauses, multitransactions with acceptable termination states, and the
// INCORPORATE/IMPORT dictionary statements. Embedded query bodies are
// delegated to internal/sqlparser.
package msqlparser

import (
	"strings"

	"msql/internal/sqlparser"
)

// Stmt is any top-level MSQL statement.
type Stmt interface{ msqlStmt() }

// UseEntry is one scope member of a USE statement.
type UseEntry struct {
	Database string
	Alias    string // optional; set via the parenthesized form
	Vital    bool
}

// Name returns the name the entry is referred to by: its alias when
// present, else the database name.
func (e UseEntry) Name() string {
	if e.Alias != "" {
		return e.Alias
	}
	return e.Database
}

// UseStmt sets the current query scope:
//
//	USE [CURRENT] [(] db [alias)] [VITAL] ...
type UseStmt struct {
	Current bool // USE CURRENT adds to the existing scope
	Entries []UseEntry
}

// VitalSet returns the names (alias or database) designated VITAL.
func (u *UseStmt) VitalSet() []string {
	var out []string
	for _, e := range u.Entries {
		if e.Vital {
			out = append(out, e.Name())
		}
	}
	return out
}

// DesignatorPart is one component of a LET designator path: a plain
// object name, or a parenthesized transformation expression over the
// database's local columns — MSQL's dynamic transformation of attributes'
// values (§2):
//
//	LET car.usd BE cars.(rate * 0.85) vehicle.(vrate)
type DesignatorPart struct {
	Name string
	Expr sqlparser.Expr // set when the part is a transformation
}

// IsExpr reports whether the part is a transformation expression.
func (p DesignatorPart) IsExpr() bool { return p.Expr != nil }

// Designator is one per-database designator path of a LET binding.
type Designator struct {
	Parts []DesignatorPart
}

// Names returns the plain spelling of the path; expression parts render
// as their SQL text.
func (d Designator) Names() []string {
	out := make([]string, len(d.Parts))
	for i, p := range d.Parts {
		if p.IsExpr() {
			out[i] = "(" + sqlparser.DeparseExpr(p.Expr) + ")"
		} else {
			out[i] = p.Name
		}
	}
	return out
}

// LetBinding binds one semantic variable path to designators, one per
// database in scope order:
//
//	LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
type LetBinding struct {
	Var         []string
	Designators []Designator
}

// LetStmt declares explicit semantic variables.
type LetStmt struct {
	Bindings []LetBinding
}

// CompClause is one compensating subquery attached to a manipulation
// statement:
//
//	COMP <database or alias> <compensating subquery>
type CompClause struct {
	Database string
	Body     sqlparser.Statement
}

// QueryStmt is one (possibly multiple) MSQL manipulation or definition
// statement with optional compensation clauses.
type QueryStmt struct {
	Body  sqlparser.Statement
	Comps []CompClause
}

// ExplainStmt shows (EXPLAIN) or executes and profiles (EXPLAIN
// ANALYZE) the federation plan of a retrieval query: the decomposition
// into per-site tasks, the ships into the coordinator, and — under
// ANALYZE — each site's annotated local plan tree:
//
//	EXPLAIN [ANALYZE] [FORMAT JSON] SELECT ...
type ExplainStmt struct {
	Analyze bool
	JSON    bool // FORMAT JSON
	Query   *QueryStmt
}

// CommitStmt is an explicit global commit — a synchronization point.
type CommitStmt struct{}

// RollbackStmt is an explicit global rollback.
type RollbackStmt struct{}

// MultiTxStmt is BEGIN MULTITRANSACTION ... COMMIT <acceptable states>
// END MULTITRANSACTION. Each acceptable state is a conjunction of
// database names or aliases; states are checked in specification order.
// COMMIT EFFECTIVE additionally requires each member's subquery to have
// affected at least one row — a reservation that matched no free resource
// commits vacuously and must not satisfy a state.
type MultiTxStmt struct {
	Body             []Stmt
	AcceptableStates [][]string
	Effective        bool
}

// IncorporateStmt registers a service in the Auxiliary Directory.
type IncorporateStmt struct {
	Service        string
	Site           string
	Connect        bool // CONNECTMODE CONNECT
	AutoCommitOnly bool // COMMITMODE COMMIT
	DDLCommit      map[string]bool
}

// ImportStmt copies schema definitions from a service into the GDD.
type ImportStmt struct {
	Database string
	Service  string
	Table    string
	View     string
	Columns  []string
}

// CreateMultidatabaseStmt defines a named multidatabase — the virtual
// databases of §2 — usable in USE scopes:
//
//	CREATE MULTIDATABASE airlines (continental, delta, united)
type CreateMultidatabaseStmt struct {
	Name    string
	Members []string
}

// DropMultidatabaseStmt removes a multidatabase definition.
type DropMultidatabaseStmt struct {
	Name string
}

// CreateMultiviewStmt stores a named multidatabase view: a multiple query
// together with the scope and LET bindings in force at definition time.
// Invoke it with SELECT * FROM <name>.
type CreateMultiviewStmt struct {
	Name string
	Body sqlparser.Statement // a SELECT
}

// DropMultiviewStmt removes a multidatabase view.
type DropMultiviewStmt struct {
	Name string
}

// CreateTriggerStmt defines an interdatabase trigger (§2): after a
// successful synchronization in which the named database committed a
// statement of the given class, the trigger's manipulation statement
// executes (with the scope and LET bindings captured at definition time).
//
//	CREATE TRIGGER audit ON delta AFTER UPDATE EXECUTE
//	  INSERT INTO log% (what) VALUES ('delta updated')
type CreateTriggerStmt struct {
	Name     string
	Database string
	Event    string // "UPDATE", "INSERT", "DELETE", "CREATE", "DROP"
	Body     *QueryStmt
}

// DropTriggerStmt removes a trigger.
type DropTriggerStmt struct {
	Name string
}

func (*UseStmt) msqlStmt()                 {}
func (*LetStmt) msqlStmt()                 {}
func (*QueryStmt) msqlStmt()               {}
func (*ExplainStmt) msqlStmt()             {}
func (*CommitStmt) msqlStmt()              {}
func (*RollbackStmt) msqlStmt()            {}
func (*MultiTxStmt) msqlStmt()             {}
func (*IncorporateStmt) msqlStmt()         {}
func (*ImportStmt) msqlStmt()              {}
func (*CreateMultidatabaseStmt) msqlStmt() {}
func (*DropMultidatabaseStmt) msqlStmt()   {}
func (*CreateMultiviewStmt) msqlStmt()     {}
func (*DropMultiviewStmt) msqlStmt()       {}
func (*CreateTriggerStmt) msqlStmt()       {}
func (*DropTriggerStmt) msqlStmt()         {}

// Script is a parsed sequence of MSQL statements.
type Script struct {
	Stmts []Stmt
}

// keyword helpers shared with the parser.
func isKw(s, kw string) bool { return strings.EqualFold(s, kw) }
