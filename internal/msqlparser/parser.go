package msqlparser

import (
	"fmt"
	"strings"

	"msql/internal/sqlparser"
)

// Parse parses a full MSQL script.
func Parse(src string) (*Script, error) {
	p, err := sqlparser.NewParser(src)
	if err != nil {
		return nil, err
	}
	script := &Script{}
	for {
		p.SkipSemicolons()
		if p.AtEOF() {
			return script, nil
		}
		s, err := parseStmt(p, false)
		if err != nil {
			return nil, err
		}
		script.Stmts = append(script.Stmts, s)
	}
}

// ParseStatement parses exactly one MSQL statement.
func ParseStatement(src string) (Stmt, error) {
	p, err := sqlparser.NewParser(src)
	if err != nil {
		return nil, err
	}
	p.SkipSemicolons()
	s, err := parseStmt(p, false)
	if err != nil {
		return nil, err
	}
	p.SkipSemicolons()
	if !p.AtEOF() {
		return nil, fmt.Errorf("msqlparser: unexpected trailing input: %s", p.Peek())
	}
	return s, nil
}

// stmtStarters terminate open-ended clause lists such as LET designators.
var stmtStarters = map[string]bool{
	"USE": true, "LET": true, "SELECT": true, "INSERT": true, "UPDATE": true,
	"DELETE": true, "CREATE": true, "DROP": true, "BEGIN": true, "END": true,
	"COMMIT": true, "ROLLBACK": true, "COMP": true, "INCORPORATE": true,
	"IMPORT": true, "EXPLAIN": true,
}

func parseStmt(p *sqlparser.Parser, inMultiTx bool) (Stmt, error) {
	t := p.Peek()
	if t.Kind != sqlparser.TokIdent {
		return nil, fmt.Errorf("msqlparser: expected statement, found %s", t)
	}
	switch strings.ToUpper(t.Text) {
	case "USE":
		return parseUse(p)
	case "LET":
		return parseLet(p)
	case "SELECT", "INSERT", "UPDATE", "DELETE":
		return parseQuery(p)
	case "EXPLAIN":
		return parseExplain(p)
	case "CREATE", "DROP":
		// Multidatabase-level definitions are handled here; plain
		// CREATE/DROP TABLE/VIEW fall through to the SQL grammar.
		if nxt := p.PeekAt(1); nxt.Kind == sqlparser.TokIdent {
			switch strings.ToUpper(nxt.Text) {
			case "MULTIDATABASE":
				return parseMultidatabase(p)
			case "MULTIVIEW":
				return parseMultiview(p)
			case "TRIGGER":
				return parseTrigger(p)
			}
		}
		return parseQuery(p)
	case "COMMIT":
		p.Next()
		p.AcceptPunct(";")
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.Next()
		p.AcceptPunct(";")
		return &RollbackStmt{}, nil
	case "BEGIN":
		if kw := p.PeekAt(1); kw.Kind == sqlparser.TokIdent && isKw(kw.Text, "MULTITRANSACTION") {
			if inMultiTx {
				return nil, fmt.Errorf("msqlparser: nested multitransactions are not allowed")
			}
			return parseMultiTx(p)
		}
		return nil, fmt.Errorf("msqlparser: expected BEGIN MULTITRANSACTION, found BEGIN %s", p.PeekAt(1))
	case "INCORPORATE":
		return parseIncorporate(p)
	case "IMPORT":
		return parseImport(p)
	default:
		return nil, fmt.Errorf("msqlparser: unsupported statement %q", t.Text)
	}
}

// parseUse handles USE [CURRENT] [(] db [alias)] [VITAL] ...
func parseUse(p *sqlparser.Parser) (*UseStmt, error) {
	if err := p.ExpectKeyword("USE"); err != nil {
		return nil, err
	}
	u := &UseStmt{}
	if p.AcceptKeyword("CURRENT") {
		u.Current = true
	}
	for {
		t := p.Peek()
		if t.Kind == sqlparser.TokPunct && t.Text == "(" {
			p.Next()
			db, err := p.Ident()
			if err != nil {
				return nil, err
			}
			alias, err := p.Ident()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			e := UseEntry{Database: db, Alias: alias}
			if p.AcceptKeyword("VITAL") {
				e.Vital = true
			}
			u.Entries = append(u.Entries, e)
			continue
		}
		if t.Kind == sqlparser.TokIdent && !stmtStarters[strings.ToUpper(t.Text)] {
			db := p.Next().Text
			e := UseEntry{Database: db}
			if p.AcceptKeyword("VITAL") {
				e.Vital = true
			}
			u.Entries = append(u.Entries, e)
			continue
		}
		break
	}
	if len(u.Entries) == 0 {
		return nil, fmt.Errorf("msqlparser: USE requires at least one database")
	}
	p.AcceptPunct(";")
	return u, nil
}

// parseLet handles LET v.p.q BE a.b.c d.e.f [, v2 BE ...]
func parseLet(p *sqlparser.Parser) (*LetStmt, error) {
	if err := p.ExpectKeyword("LET"); err != nil {
		return nil, err
	}
	l := &LetStmt{}
	for {
		varPath, err := parsePath(p)
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("BE"); err != nil {
			return nil, err
		}
		b := LetBinding{Var: varPath}
		for {
			t := p.Peek()
			startsName := t.Kind == sqlparser.TokIdent && !stmtStarters[strings.ToUpper(t.Text)]
			if !startsName && !p.PeekPunct("(") {
				break
			}
			d, err := parseDesignator(p)
			if err != nil {
				return nil, err
			}
			b.Designators = append(b.Designators, d)
		}
		if len(b.Designators) == 0 {
			return nil, fmt.Errorf("msqlparser: LET %s BE requires designators", strings.Join(varPath, "."))
		}
		l.Bindings = append(l.Bindings, b)
		if !p.AcceptPunct(",") {
			break
		}
	}
	p.AcceptPunct(";")
	return l, nil
}

func parsePath(p *sqlparser.Parser) ([]string, error) {
	id, err := p.Ident()
	if err != nil {
		return nil, err
	}
	parts := []string{id}
	for p.PeekPunct(".") {
		p.Next()
		nxt, err := p.Ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, nxt)
	}
	return parts, nil
}

// parseDesignator parses one LET designator path whose components are
// names or parenthesized transformation expressions.
func parseDesignator(p *sqlparser.Parser) (Designator, error) {
	var d Designator
	part, err := parseDesignatorPart(p)
	if err != nil {
		return d, err
	}
	d.Parts = append(d.Parts, part)
	for p.PeekPunct(".") {
		p.Next()
		part, err := parseDesignatorPart(p)
		if err != nil {
			return d, err
		}
		d.Parts = append(d.Parts, part)
	}
	return d, nil
}

func parseDesignatorPart(p *sqlparser.Parser) (DesignatorPart, error) {
	if p.AcceptPunct("(") {
		e, err := p.ParseExpr()
		if err != nil {
			return DesignatorPart{}, err
		}
		if err := p.ExpectPunct(")"); err != nil {
			return DesignatorPart{}, err
		}
		return DesignatorPart{Expr: e}, nil
	}
	id, err := p.Ident()
	if err != nil {
		return DesignatorPart{}, err
	}
	return DesignatorPart{Name: id}, nil
}

// parseQuery handles a manipulation/definition statement with optional
// trailing COMP clauses.
func parseQuery(p *sqlparser.Parser) (*QueryStmt, error) {
	body, err := p.ParseStatement()
	if err != nil {
		return nil, err
	}
	q := &QueryStmt{Body: body}
	for p.AcceptKeyword("COMP") {
		db, err := p.Ident()
		if err != nil {
			return nil, err
		}
		comp, err := p.ParseStatement()
		if err != nil {
			return nil, err
		}
		q.Comps = append(q.Comps, CompClause{Database: db, Body: comp})
	}
	p.AcceptPunct(";")
	return q, nil
}

// parseExplain handles EXPLAIN [ANALYZE] [FORMAT JSON] <query>.
func parseExplain(p *sqlparser.Parser) (*ExplainStmt, error) {
	if err := p.ExpectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	ex := &ExplainStmt{}
	if p.AcceptKeyword("ANALYZE") {
		ex.Analyze = true
	}
	if p.AcceptKeyword("FORMAT") {
		if err := p.ExpectKeyword("JSON"); err != nil {
			return nil, err
		}
		ex.JSON = true
	}
	t := p.Peek()
	if t.Kind != sqlparser.TokIdent || !isKw(t.Text, "SELECT") {
		return nil, fmt.Errorf("msqlparser: EXPLAIN supports SELECT queries, found %s", t)
	}
	q, err := parseQuery(p)
	if err != nil {
		return nil, err
	}
	ex.Query = q
	return ex, nil
}

// parseMultiTx handles BEGIN MULTITRANSACTION ... COMMIT <states> END
// MULTITRANSACTION.
func parseMultiTx(p *sqlparser.Parser) (*MultiTxStmt, error) {
	if err := p.ExpectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("MULTITRANSACTION"); err != nil {
		return nil, err
	}
	m := &MultiTxStmt{}
	for {
		p.SkipSemicolons()
		t := p.Peek()
		if t.Kind == sqlparser.TokEOF {
			return nil, fmt.Errorf("msqlparser: unterminated multitransaction")
		}
		if t.Kind == sqlparser.TokIdent && isKw(t.Text, "COMMIT") {
			break
		}
		s, err := parseStmt(p, true)
		if err != nil {
			return nil, err
		}
		m.Body = append(m.Body, s)
	}
	if err := p.ExpectKeyword("COMMIT"); err != nil {
		return nil, err
	}
	if p.AcceptKeyword("EFFECTIVE") {
		m.Effective = true
	}
	// Acceptable states: conjunctions of names; a new state starts at each
	// identifier that is not joined by AND. An optional OR or comma may
	// separate states explicitly.
	for {
		t := p.Peek()
		if t.Kind != sqlparser.TokIdent || isKw(t.Text, "END") {
			break
		}
		if isKw(t.Text, "OR") {
			p.Next()
			continue
		}
		var state []string
		name, err := p.Ident()
		if err != nil {
			return nil, err
		}
		state = append(state, name)
		for p.AcceptKeyword("AND") {
			nxt, err := p.Ident()
			if err != nil {
				return nil, err
			}
			state = append(state, nxt)
		}
		m.AcceptableStates = append(m.AcceptableStates, state)
		p.AcceptPunct(",")
	}
	if len(m.AcceptableStates) == 0 {
		return nil, fmt.Errorf("msqlparser: multitransaction COMMIT requires at least one acceptable state")
	}
	if err := p.ExpectKeyword("END"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("MULTITRANSACTION"); err != nil {
		return nil, err
	}
	p.AcceptPunct(";")
	return m, nil
}

// parseIncorporate handles INCORPORATE SERVICE svc [SITE site]
// CONNECTMODE CONNECT|NOCONNECT COMMITMODE COMMIT|NOCOMMIT
// [CREATE COMMIT|NOCOMMIT] [INSERT ...] [DROP ...].
func parseIncorporate(p *sqlparser.Parser) (*IncorporateStmt, error) {
	if err := p.ExpectKeyword("INCORPORATE"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("SERVICE"); err != nil {
		return nil, err
	}
	name, err := p.Ident()
	if err != nil {
		return nil, err
	}
	inc := &IncorporateStmt{Service: name, DDLCommit: map[string]bool{}}
	if p.AcceptKeyword("SITE") {
		t := p.Peek()
		switch t.Kind {
		case sqlparser.TokString, sqlparser.TokIdent:
			inc.Site = p.Next().Text
		default:
			return nil, fmt.Errorf("msqlparser: expected site address, found %s", t)
		}
	}
	if err := p.ExpectKeyword("CONNECTMODE"); err != nil {
		return nil, err
	}
	switch {
	case p.AcceptKeyword("CONNECT"):
		inc.Connect = true
	case p.AcceptKeyword("NOCONNECT"):
		inc.Connect = false
	default:
		return nil, fmt.Errorf("msqlparser: expected CONNECT or NOCONNECT, found %s", p.Peek())
	}
	if err := p.ExpectKeyword("COMMITMODE"); err != nil {
		return nil, err
	}
	switch {
	case p.AcceptKeyword("COMMIT"):
		inc.AutoCommitOnly = true
	case p.AcceptKeyword("NOCOMMIT"):
		inc.AutoCommitOnly = false
	default:
		return nil, fmt.Errorf("msqlparser: expected COMMIT or NOCOMMIT, found %s", p.Peek())
	}
	for {
		var class string
		switch {
		case p.AcceptKeyword("CREATE"):
			class = "CREATE"
		case p.AcceptKeyword("INSERT"):
			class = "INSERT"
		case p.AcceptKeyword("DROP"):
			class = "DROP"
		default:
			p.AcceptPunct(";")
			return inc, nil
		}
		switch {
		case p.AcceptKeyword("COMMIT"):
			inc.DDLCommit[class] = true
		case p.AcceptKeyword("NOCOMMIT"):
			inc.DDLCommit[class] = false
		default:
			return nil, fmt.Errorf("msqlparser: expected COMMIT or NOCOMMIT after %s, found %s", class, p.Peek())
		}
	}
}

// parseMultidatabase handles CREATE/DROP MULTIDATABASE name (members).
func parseMultidatabase(p *sqlparser.Parser) (Stmt, error) {
	drop := p.AcceptKeyword("DROP")
	if !drop {
		if err := p.ExpectKeyword("CREATE"); err != nil {
			return nil, err
		}
	}
	if err := p.ExpectKeyword("MULTIDATABASE"); err != nil {
		return nil, err
	}
	name, err := p.Ident()
	if err != nil {
		return nil, err
	}
	if drop {
		p.AcceptPunct(";")
		return &DropMultidatabaseStmt{Name: name}, nil
	}
	if err := p.ExpectPunct("("); err != nil {
		return nil, err
	}
	var members []string
	for {
		m, err := p.Ident()
		if err != nil {
			return nil, err
		}
		members = append(members, m)
		if !p.AcceptPunct(",") {
			break
		}
	}
	if err := p.ExpectPunct(")"); err != nil {
		return nil, err
	}
	p.AcceptPunct(";")
	return &CreateMultidatabaseStmt{Name: name, Members: members}, nil
}

// parseMultiview handles CREATE MULTIVIEW name AS select / DROP MULTIVIEW.
func parseMultiview(p *sqlparser.Parser) (Stmt, error) {
	drop := p.AcceptKeyword("DROP")
	if !drop {
		if err := p.ExpectKeyword("CREATE"); err != nil {
			return nil, err
		}
	}
	if err := p.ExpectKeyword("MULTIVIEW"); err != nil {
		return nil, err
	}
	name, err := p.Ident()
	if err != nil {
		return nil, err
	}
	if drop {
		p.AcceptPunct(";")
		return &DropMultiviewStmt{Name: name}, nil
	}
	if err := p.ExpectKeyword("AS"); err != nil {
		return nil, err
	}
	body, err := p.ParseSelect()
	if err != nil {
		return nil, err
	}
	p.AcceptPunct(";")
	return &CreateMultiviewStmt{Name: name, Body: body}, nil
}

// parseTrigger handles CREATE TRIGGER name ON db AFTER event EXECUTE
// <manipulation statement> / DROP TRIGGER name.
func parseTrigger(p *sqlparser.Parser) (Stmt, error) {
	drop := p.AcceptKeyword("DROP")
	if !drop {
		if err := p.ExpectKeyword("CREATE"); err != nil {
			return nil, err
		}
	}
	if err := p.ExpectKeyword("TRIGGER"); err != nil {
		return nil, err
	}
	name, err := p.Ident()
	if err != nil {
		return nil, err
	}
	if drop {
		p.AcceptPunct(";")
		return &DropTriggerStmt{Name: name}, nil
	}
	if err := p.ExpectKeyword("ON"); err != nil {
		return nil, err
	}
	db, err := p.Ident()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("AFTER"); err != nil {
		return nil, err
	}
	event := ""
	for _, ev := range [...]string{"UPDATE", "INSERT", "DELETE", "CREATE", "DROP"} {
		if p.AcceptKeyword(ev) {
			event = ev
			break
		}
	}
	if event == "" {
		return nil, fmt.Errorf("msqlparser: expected trigger event, found %s", p.Peek())
	}
	if err := p.ExpectKeyword("EXECUTE"); err != nil {
		return nil, err
	}
	body, err := parseQuery(p)
	if err != nil {
		return nil, err
	}
	return &CreateTriggerStmt{Name: name, Database: db, Event: event, Body: body}, nil
}

// parseImport handles IMPORT DATABASE db FROM SERVICE svc
// [TABLE t [COLUMN c ...]] [VIEW v [COLUMN c ...]].
func parseImport(p *sqlparser.Parser) (*ImportStmt, error) {
	if err := p.ExpectKeyword("IMPORT"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("DATABASE"); err != nil {
		return nil, err
	}
	db, err := p.Ident()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("SERVICE"); err != nil {
		return nil, err
	}
	svc, err := p.Ident()
	if err != nil {
		return nil, err
	}
	imp := &ImportStmt{Database: db, Service: svc}
	parseColumns := func() error {
		if !p.AcceptKeyword("COLUMN") {
			return nil
		}
		for {
			t := p.Peek()
			if t.Kind != sqlparser.TokIdent || stmtStarters[strings.ToUpper(t.Text)] ||
				isKw(t.Text, "VIEW") || isKw(t.Text, "TABLE") {
				break
			}
			imp.Columns = append(imp.Columns, p.Next().Text)
		}
		if len(imp.Columns) == 0 {
			return fmt.Errorf("msqlparser: COLUMN requires at least one column name")
		}
		return nil
	}
	switch {
	case p.AcceptKeyword("TABLE"):
		imp.Table, err = p.Ident()
		if err != nil {
			return nil, err
		}
		if err := parseColumns(); err != nil {
			return nil, err
		}
	case p.AcceptKeyword("VIEW"):
		imp.View, err = p.Ident()
		if err != nil {
			return nil, err
		}
		if err := parseColumns(); err != nil {
			return nil, err
		}
	}
	p.AcceptPunct(";")
	return imp, nil
}
