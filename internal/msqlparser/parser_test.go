package msqlparser

import (
	"testing"

	"msql/internal/sqlparser"
)

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return s
}

// The Section 2 example: resolving naming and schema heterogeneity.
const section2Query = `
USE avis national
LET car.type.status BE cars.cartype.carst
                       vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
`

func TestParseSection2Example(t *testing.T) {
	s := mustParse(t, section2Query)
	if len(s.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	use := s.Stmts[0].(*UseStmt)
	if len(use.Entries) != 2 || use.Entries[0].Database != "avis" || use.Entries[1].Database != "national" {
		t.Fatalf("use = %+v", use)
	}
	if use.Entries[0].Vital || use.Entries[1].Vital {
		t.Fatal("no VITAL in the section 2 example")
	}
	let := s.Stmts[1].(*LetStmt)
	if len(let.Bindings) != 1 {
		t.Fatalf("bindings = %+v", let.Bindings)
	}
	b := let.Bindings[0]
	if len(b.Var) != 3 || b.Var[0] != "car" || b.Var[2] != "status" {
		t.Fatalf("var = %v", b.Var)
	}
	if len(b.Designators) != 2 || b.Designators[0].Parts[0].Name != "cars" || b.Designators[1].Parts[2].Name != "vstat" {
		t.Fatalf("designators = %v", b.Designators)
	}
	q := s.Stmts[2].(*QueryStmt)
	sel := q.Body.(*sqlparser.SelectStmt)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if cr := sel.Items[0].Expr.(sqlparser.ColRef); cr.Name() != "%code" {
		t.Fatalf("item0 = %v", cr)
	}
	if cr := sel.Items[2].Expr.(sqlparser.ColRef); !cr.Optional {
		t.Fatalf("item2 not optional: %v", cr)
	}
}

// The Section 3.2 example with VITAL designators.
const section32Query = `
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND
      dest% = 'San Antonio'
`

func TestParseSection32VitalUpdate(t *testing.T) {
	s := mustParse(t, section32Query)
	use := s.Stmts[0].(*UseStmt)
	if len(use.Entries) != 3 {
		t.Fatalf("entries = %+v", use.Entries)
	}
	wantVital := []bool{true, false, true}
	for i, e := range use.Entries {
		if e.Vital != wantVital[i] {
			t.Fatalf("entry %d vital = %v", i, e.Vital)
		}
	}
	vs := use.VitalSet()
	if len(vs) != 2 || vs[0] != "continental" || vs[1] != "united" {
		t.Fatalf("vital set = %v", vs)
	}
	q := s.Stmts[1].(*QueryStmt)
	upd := q.Body.(*sqlparser.UpdateStmt)
	if upd.Table.String() != "flight%" {
		t.Fatalf("table = %v", upd.Table)
	}
}

// The Section 3.3 example with a COMP clause.
const section33Query = `
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND
      dest% = 'San Antonio'
COMP continental
  UPDATE flights
  SET rate = rate / 1.1
  WHERE source = 'Houston' AND
        destination = 'San Antonio'
`

func TestParseSection33Compensation(t *testing.T) {
	s := mustParse(t, section33Query)
	q := s.Stmts[1].(*QueryStmt)
	if len(q.Comps) != 1 {
		t.Fatalf("comps = %+v", q.Comps)
	}
	c := q.Comps[0]
	if c.Database != "continental" {
		t.Fatalf("comp db = %s", c.Database)
	}
	upd := c.Body.(*sqlparser.UpdateStmt)
	if upd.Table.String() != "flights" {
		t.Fatalf("comp table = %v", upd.Table)
	}
	div := upd.Assigns[0].Expr.(*sqlparser.BinaryExpr)
	if div.Op != "/" {
		t.Fatalf("comp op = %s", div.Op)
	}
}

// The Section 3.4 travel-agent multitransaction, verbatim structure.
const section34MultiTx = `
BEGIN MULTITRANSACTION
  USE continental delta
  LET fitab.snu.sstat.clname BE
      f838.seatnu.seatstatus.clientname
      f747.snu.sstat.passname
  UPDATE fitab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu)
                FROM fitab
                WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
      cars.code.carst
      vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode)
                  FROM cartab
                  WHERE cstat = 'FREE');
  COMMIT
    continental AND national
    delta AND avis
END MULTITRANSACTION
`

func TestParseSection34MultiTransaction(t *testing.T) {
	s := mustParse(t, section34MultiTx)
	if len(s.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	m := s.Stmts[0].(*MultiTxStmt)
	if len(m.Body) != 6 {
		t.Fatalf("body stmts = %d", len(m.Body))
	}
	if len(m.AcceptableStates) != 2 {
		t.Fatalf("states = %v", m.AcceptableStates)
	}
	if m.AcceptableStates[0][0] != "continental" || m.AcceptableStates[0][1] != "national" {
		t.Fatalf("state0 = %v", m.AcceptableStates[0])
	}
	if m.AcceptableStates[1][0] != "delta" || m.AcceptableStates[1][1] != "avis" {
		t.Fatalf("state1 = %v", m.AcceptableStates[1])
	}
	// The second USE inside the body.
	use2 := m.Body[3].(*UseStmt)
	if use2.Entries[0].Database != "avis" {
		t.Fatalf("use2 = %+v", use2)
	}
}

func TestParseIncorporate(t *testing.T) {
	s := mustParse(t, `
INCORPORATE SERVICE oracle1 SITE '127.0.0.1:9001'
  CONNECTMODE CONNECT
  COMMITMODE NOCOMMIT
  CREATE NOCOMMIT
  INSERT NOCOMMIT
  DROP NOCOMMIT
`)
	inc := s.Stmts[0].(*IncorporateStmt)
	if inc.Service != "oracle1" || inc.Site != "127.0.0.1:9001" {
		t.Fatalf("inc = %+v", inc)
	}
	if !inc.Connect || inc.AutoCommitOnly {
		t.Fatalf("modes = %+v", inc)
	}
	for _, class := range []string{"CREATE", "INSERT", "DROP"} {
		if v, ok := inc.DDLCommit[class]; !ok || v {
			t.Fatalf("DDLCommit[%s] = %v, %v", class, v, ok)
		}
	}
}

func TestParseIncorporateAutoCommitNoSite(t *testing.T) {
	s := mustParse(t, "INCORPORATE SERVICE legacy CONNECTMODE NOCONNECT COMMITMODE COMMIT")
	inc := s.Stmts[0].(*IncorporateStmt)
	if inc.Connect || !inc.AutoCommitOnly || inc.Site != "" {
		t.Fatalf("inc = %+v", inc)
	}
}

func TestParseImportVariants(t *testing.T) {
	s := mustParse(t, `
IMPORT DATABASE avis FROM SERVICE oracle1;
IMPORT DATABASE avis FROM SERVICE oracle1 TABLE cars;
IMPORT DATABASE avis FROM SERVICE oracle1 TABLE cars COLUMN code rate;
IMPORT DATABASE avis FROM SERVICE oracle1 VIEW available;
`)
	if len(s.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	i0 := s.Stmts[0].(*ImportStmt)
	if i0.Database != "avis" || i0.Service != "oracle1" || i0.Table != "" {
		t.Fatalf("i0 = %+v", i0)
	}
	i2 := s.Stmts[2].(*ImportStmt)
	if i2.Table != "cars" || len(i2.Columns) != 2 || i2.Columns[1] != "rate" {
		t.Fatalf("i2 = %+v", i2)
	}
	i3 := s.Stmts[3].(*ImportStmt)
	if i3.View != "available" {
		t.Fatalf("i3 = %+v", i3)
	}
}

func TestParseUseWithAliases(t *testing.T) {
	s := mustParse(t, "USE (continental c) VITAL (delta d) united")
	use := s.Stmts[0].(*UseStmt)
	if len(use.Entries) != 3 {
		t.Fatalf("entries = %+v", use.Entries)
	}
	if use.Entries[0].Alias != "c" || !use.Entries[0].Vital {
		t.Fatalf("entry0 = %+v", use.Entries[0])
	}
	if use.Entries[0].Name() != "c" || use.Entries[2].Name() != "united" {
		t.Fatalf("names = %s, %s", use.Entries[0].Name(), use.Entries[2].Name())
	}
}

func TestParseUseCurrent(t *testing.T) {
	s := mustParse(t, "USE CURRENT avis")
	use := s.Stmts[0].(*UseStmt)
	if !use.Current || use.Entries[0].Database != "avis" {
		t.Fatalf("use = %+v", use)
	}
}

func TestParseGlobalCommitRollback(t *testing.T) {
	s := mustParse(t, "USE avis\nUPDATE cars SET rate = 1\nCOMMIT\nROLLBACK")
	if len(s.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	if _, ok := s.Stmts[2].(*CommitStmt); !ok {
		t.Fatalf("stmt2 = %T", s.Stmts[2])
	}
	if _, ok := s.Stmts[3].(*RollbackStmt); !ok {
		t.Fatalf("stmt3 = %T", s.Stmts[3])
	}
}

func TestParseMultipleLetBindings(t *testing.T) {
	s := mustParse(t, "LET a.b BE x.y z.w, c.d BE u.v")
	let := s.Stmts[0].(*LetStmt)
	if len(let.Bindings) != 2 {
		t.Fatalf("bindings = %+v", let.Bindings)
	}
	if len(let.Bindings[0].Designators) != 2 || len(let.Bindings[1].Designators) != 1 {
		t.Fatalf("designators = %+v", let.Bindings)
	}
}

func TestParseMultipleComps(t *testing.T) {
	s := mustParse(t, `
USE a VITAL b VITAL
UPDATE t% SET x% = 1
COMP a UPDATE t SET x = 0
COMP b UPDATE tt SET xx = 0
`)
	q := s.Stmts[1].(*QueryStmt)
	if len(q.Comps) != 2 || q.Comps[1].Database != "b" {
		t.Fatalf("comps = %+v", q.Comps)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"USE",
		"LET a.b",
		"LET a.b BE",
		"BEGIN TRANSACTION",
		"BEGIN MULTITRANSACTION USE a UPDATE t SET x = 1",            // unterminated
		"BEGIN MULTITRANSACTION COMMIT END MULTITRANSACTION",         // no states
		"INCORPORATE SERVICE s CONNECTMODE WRONG COMMITMODE COMMIT",  // bad connectmode
		"INCORPORATE SERVICE s CONNECTMODE CONNECT COMMITMODE MAYBE", // bad commitmode
		"INCORPORATE SERVICE s CONNECTMODE CONNECT COMMITMODE COMMIT CREATE SOMETIMES",
		"IMPORT DATABASE d FROM SERVICE s TABLE t COLUMN",
		"IMPORT TABLE t",
		"SELEKT things",
		"BEGIN MULTITRANSACTION BEGIN MULTITRANSACTION COMMIT a END MULTITRANSACTION COMMIT a END MULTITRANSACTION",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseStatementSingle(t *testing.T) {
	st, err := ParseStatement("USE avis national")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*UseStmt); !ok {
		t.Fatalf("stmt = %T", st)
	}
	if _, err := ParseStatement("USE avis; USE national"); err == nil {
		t.Fatal("trailing statement should error")
	}
}

func TestParseScriptSequence(t *testing.T) {
	s := mustParse(t, `
INCORPORATE SERVICE svc1 CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE avis FROM SERVICE svc1;
USE avis;
SELECT code FROM cars;
`)
	if len(s.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
}

func TestParseExplain(t *testing.T) {
	s := mustParse(t, `EXPLAIN SELECT %code FROM car`)
	ex, ok := s.Stmts[0].(*ExplainStmt)
	if !ok {
		t.Fatalf("stmt is %T, want *ExplainStmt", s.Stmts[0])
	}
	if ex.Analyze || ex.JSON {
		t.Fatalf("plain EXPLAIN parsed with analyze=%v json=%v", ex.Analyze, ex.JSON)
	}
	if ex.Query == nil || ex.Query.Body == nil {
		t.Fatal("EXPLAIN lost its query")
	}

	s = mustParse(t, `EXPLAIN ANALYZE FORMAT JSON SELECT f.flnu FROM continental.flights f WHERE f.rate < 100`)
	ex = s.Stmts[0].(*ExplainStmt)
	if !ex.Analyze || !ex.JSON {
		t.Fatalf("flags lost: analyze=%v json=%v", ex.Analyze, ex.JSON)
	}
	sel, ok := ex.Query.Body.(*sqlparser.SelectStmt)
	if !ok {
		t.Fatalf("target is %T, want *SelectStmt", ex.Query.Body)
	}
	if len(sel.From) != 1 || sel.From[0].Alias != "f" {
		t.Fatalf("target select mangled: %+v", sel.From)
	}

	// EXPLAIN keeps the enclosing scope like any query statement.
	s = mustParse(t, "USE avis national\nEXPLAIN ANALYZE SELECT %code FROM car")
	if _, ok := s.Stmts[1].(*ExplainStmt); !ok {
		t.Fatalf("stmt after USE is %T, want *ExplainStmt", s.Stmts[1])
	}

	if _, err := Parse(`EXPLAIN DELETE FROM car`); err == nil {
		t.Fatal("EXPLAIN of a non-SELECT must not parse")
	}
	if _, err := Parse(`EXPLAIN FORMAT XML SELECT a FROM t`); err == nil {
		t.Fatal("EXPLAIN FORMAT XML must not parse")
	}
}
