package msqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanicsOnNoise feeds the MSQL parser seeded random token
// soup; parse errors are fine, panics are not.
func TestParserNeverPanicsOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	words := []string{
		"USE", "LET", "BE", "SELECT", "FROM", "WHERE", "UPDATE", "SET",
		"INSERT", "INTO", "VALUES", "DELETE", "COMP", "VITAL", "BEGIN",
		"MULTITRANSACTION", "COMMIT", "END", "AND", "OR", "NOT",
		"INCORPORATE", "SERVICE", "IMPORT", "DATABASE", "TABLE", "COLUMN",
		"CREATE", "DROP", "MULTIVIEW", "TRIGGER", "EFFECTIVE",
		"flight%", "%code", "~rate", "avis", "t1", "x.y.z", "(", ")", ",",
		";", ".", "=", "*", "'str'", "42", "1.1", "{", "}", "<", ">",
	}
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(20)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestParserNeverPanicsOnBytes throws raw byte noise at the lexer/parser.
func TestParserNeverPanicsOnBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(128))
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
