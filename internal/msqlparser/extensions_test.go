package msqlparser

import (
	"testing"

	"msql/internal/sqlparser"
)

func TestParseMultidatabase(t *testing.T) {
	s := mustParse(t, "CREATE MULTIDATABASE airlines (continental, delta, united)")
	md := s.Stmts[0].(*CreateMultidatabaseStmt)
	if md.Name != "airlines" || len(md.Members) != 3 || md.Members[2] != "united" {
		t.Fatalf("md = %+v", md)
	}
	s = mustParse(t, "DROP MULTIDATABASE airlines")
	if s.Stmts[0].(*DropMultidatabaseStmt).Name != "airlines" {
		t.Fatal("drop name wrong")
	}
}

func TestParseMultiview(t *testing.T) {
	s := mustParse(t, "CREATE MULTIVIEW v AS SELECT %code FROM car% WHERE status = 'available'")
	mv := s.Stmts[0].(*CreateMultiviewStmt)
	if mv.Name != "v" {
		t.Fatalf("mv = %+v", mv)
	}
	sel := mv.Body.(*sqlparser.SelectStmt)
	if len(sel.Items) != 1 {
		t.Fatalf("body = %+v", sel)
	}
	s = mustParse(t, "DROP MULTIVIEW v")
	if s.Stmts[0].(*DropMultiviewStmt).Name != "v" {
		t.Fatal("drop name wrong")
	}
}

func TestParseTrigger(t *testing.T) {
	s := mustParse(t, `CREATE TRIGGER audit ON delta AFTER UPDATE EXECUTE
INSERT INTO log (what) VALUES ('x')`)
	tr := s.Stmts[0].(*CreateTriggerStmt)
	if tr.Name != "audit" || tr.Database != "delta" || tr.Event != "UPDATE" {
		t.Fatalf("trigger = %+v", tr)
	}
	if _, ok := tr.Body.Body.(*sqlparser.InsertStmt); !ok {
		t.Fatalf("body = %T", tr.Body.Body)
	}
	s = mustParse(t, "DROP TRIGGER audit")
	if s.Stmts[0].(*DropTriggerStmt).Name != "audit" {
		t.Fatal("drop name wrong")
	}
}

func TestParseTriggerEvents(t *testing.T) {
	for _, ev := range []string{"UPDATE", "INSERT", "DELETE", "CREATE", "DROP"} {
		s := mustParse(t, "CREATE TRIGGER t ON d AFTER "+ev+" EXECUTE UPDATE x SET a = 1")
		if got := s.Stmts[0].(*CreateTriggerStmt).Event; got != ev {
			t.Fatalf("event = %s, want %s", got, ev)
		}
	}
}

func TestParseExtensionErrors(t *testing.T) {
	bad := []string{
		"CREATE MULTIDATABASE m",                                   // no members
		"CREATE MULTIDATABASE m ()",                                // empty members
		"CREATE MULTIVIEW v SELECT 1",                              // missing AS
		"CREATE TRIGGER t ON d AFTER EXECUTE",                      // missing event
		"CREATE TRIGGER t AFTER UPDATE EXECUTE UPDATE x SET a = 1", // missing ON
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	// Plain CREATE TABLE still parses through the SQL grammar.
	s := mustParse(t, "CREATE TABLE t (a INTEGER)")
	if _, ok := s.Stmts[0].(*QueryStmt); !ok {
		t.Fatalf("stmt = %T", s.Stmts[0])
	}
}

func TestParseTransformationDesignators(t *testing.T) {
	s := mustParse(t, "LET car.usd BE cars.(rate * 0.85) vehicle.(vrate)")
	b := s.Stmts[0].(*LetStmt).Bindings[0]
	if len(b.Designators) != 2 {
		t.Fatalf("designators = %+v", b.Designators)
	}
	d0 := b.Designators[0]
	if d0.Parts[0].Name != "cars" || !d0.Parts[1].IsExpr() {
		t.Fatalf("d0 = %+v", d0)
	}
	names := d0.Names()
	if names[1] != "(rate * 0.85)" {
		t.Fatalf("names = %v", names)
	}
	// Errors: unterminated expression, missing part.
	for _, src := range []string{
		"LET a.b BE cars.(rate",
		"LET a.b BE cars.",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
