package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks the full text exposition — every metric
// shape, headers, ordering, bucket cumulation — against a golden file.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs -run Golden.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_plain_total", "a plain counter").Add(3)
	reg.Gauge("demo_level", "a plain gauge").Set(-2)
	h := reg.Histogram("demo_latency_seconds", "a plain histogram", []float64{0.5, 1})
	// Powers of two keep the float sum exact across platforms.
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)
	cv := reg.CounterVec("demo_ops_total", "a counter vec", "site", "op")
	cv.With("a:1", "exec").Inc()
	cv.With("b:2", "prepare").Add(2)
	gv := reg.GaugeVec("demo_depth", "a gauge vec", "queue")
	gv.With("fast").Set(9)
	hv := reg.HistogramVec("demo_rt_seconds", "a histogram vec", []float64{0.5}, "site")
	hv.With("a:1").Observe(0.25)
	hv.With("a:1").Observe(2)

	var b strings.Builder
	reg.WritePrometheus(&b)
	got := b.String()

	golden := filepath.Join("testdata", "expo.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestConcurrentWithLabelCreation hammers the label-child creation path
// of every vec type from many goroutines sharing label values; under
// -race this is the proof that With's double-checked creation is safe.
func TestConcurrentWithLabelCreation(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("race_ops_total", "h", "k")
	gv := reg.GaugeVec("race_depth", "h", "k")
	hv := reg.HistogramVec("race_rt_seconds", "h", []float64{1}, "k")
	const workers = 32
	const iters = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				label := fmt.Sprintf("l%d", (w+i)%17)
				cv.With(label).Inc()
				gv.With(label).Set(int64(i))
				hv.With(label).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for i := 0; i < 17; i++ {
		total += cv.With(fmt.Sprintf("l%d", i)).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	var hcount int64
	for i := 0; i < 17; i++ {
		hcount += hv.With(fmt.Sprintf("l%d", i)).Count()
	}
	if hcount != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hcount, workers*iters)
	}
}
