package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is one statement's entry in the live query inventory: what
// is running (or recently ran), who issued it, how it was planned, and —
// for EXPLAIN ANALYZE'd or completed statements — where the time went.
type QueryRecord struct {
	ID      uint64    `json:"id"`
	TraceID string    `json:"trace_id,omitempty"`
	MTID    uint64    `json:"mtid,omitempty"`
	Tenant  string    `json:"tenant,omitempty"`
	Verb    string    `json:"verb,omitempty"`
	SQL     string    `json:"sql"`
	Start   time.Time `json:"start"`
	// Elapsed is zero while the statement is still in flight.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	Digest  string        `json:"plan_digest,omitempty"`
	Plan    *PlanNode     `json:"plan,omitempty"`
	Err     string        `json:"err,omitempty"`
	Done    bool          `json:"done"`
}

// QueryInventory tracks in-flight statements and keeps a bounded ring of
// recently completed ones, served by /debug/queries. All methods are safe
// for concurrent use and nil-safe so instrumentation points need no
// branches.
type QueryInventory struct {
	mu       sync.Mutex
	nextID   uint64
	inflight map[uint64]*QueryRecord
	recent   []*QueryRecord // oldest first
	cap      int
}

// NewQueryInventory returns an inventory retaining up to capacity
// completed statements (minimum 1).
func NewQueryInventory(capacity int) *QueryInventory {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryInventory{inflight: make(map[uint64]*QueryRecord), cap: capacity}
}

// DefaultQueries is the process-wide inventory behind /debug/queries.
var DefaultQueries = NewQueryInventory(128)

// Begin registers a statement as in flight and returns its inventory id.
func (q *QueryInventory) Begin(rec QueryRecord) uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextID++
	rec.ID = q.nextID
	if rec.Start.IsZero() {
		rec.Start = time.Now()
	}
	r := rec
	q.inflight[r.ID] = &r
	return r.ID
}

// Finish moves a statement from in-flight to the recent ring, recording
// its outcome. A nil plan keeps whatever Begin recorded. The completed
// record is returned (by value, safe to hold) so callers can feed it to
// the slow-query log without re-assembling the fields.
func (q *QueryInventory) Finish(id uint64, elapsed time.Duration, plan *PlanNode, errMsg string) (QueryRecord, bool) {
	if q == nil || id == 0 {
		return QueryRecord{}, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	r, ok := q.inflight[id]
	if !ok {
		return QueryRecord{}, false
	}
	delete(q.inflight, id)
	r.Done = true
	r.Elapsed = elapsed
	r.Err = errMsg
	if plan != nil {
		r.Plan = plan
		r.Digest = plan.Digest()
	}
	q.recent = append(q.recent, r)
	for len(q.recent) > q.cap {
		q.recent = q.recent[1:]
	}
	return *r, true
}

// SetMTID stamps the multitransaction id onto an in-flight record once the
// coordinator assigns one (after Begin, during translation).
func (q *QueryInventory) SetMTID(id, mtid uint64) {
	if q == nil || id == 0 {
		return
	}
	q.mu.Lock()
	if r, ok := q.inflight[id]; ok {
		r.MTID = mtid
	}
	q.mu.Unlock()
}

// queryIDKey carries an inventory id through a statement's context so
// deeper layers (the coordinator journal, which assigns the MTID) can
// stamp fields onto the in-flight record.
type queryIDKey struct{}

// WithQueryID attaches a query-inventory id to a context.
func WithQueryID(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, queryIDKey{}, id)
}

// QueryIDFrom returns the inventory id attached to ctx, 0 when absent.
func QueryIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(queryIDKey{}).(uint64)
	return id
}

// Snapshot returns the in-flight statements (oldest first) and the recent
// ring (most recent first). Records are deep-copied; callers may hold them
// across further inventory mutation.
func (q *QueryInventory) Snapshot() (inflight, recent []QueryRecord) {
	if q == nil {
		return nil, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, r := range q.inflight {
		c := *r
		c.Plan = r.Plan.Clone()
		c.Elapsed = time.Since(r.Start)
		inflight = append(inflight, c)
	}
	for i := len(q.recent) - 1; i >= 0; i-- {
		r := q.recent[i]
		c := *r
		c.Plan = r.Plan.Clone()
		recent = append(recent, c)
	}
	// Oldest in-flight first: stable output for the debug page.
	for i := 0; i < len(inflight); i++ {
		for j := i + 1; j < len(inflight); j++ {
			if inflight[j].ID < inflight[i].ID {
				inflight[i], inflight[j] = inflight[j], inflight[i]
			}
		}
	}
	return inflight, recent
}

// --- slow-query log ---

// slowEntry is the JSON-lines schema of the slow-query log. One line per
// statement whose wall time crossed the threshold.
type slowEntry struct {
	TS         string  `json:"ts"`
	Tenant     string  `json:"tenant,omitempty"`
	MTID       uint64  `json:"mtid,omitempty"`
	TraceID    string  `json:"trace_id,omitempty"`
	Verb       string  `json:"verb,omitempty"`
	SQL        string  `json:"sql"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	PlanDigest string  `json:"plan_digest,omitempty"`
	Err        string  `json:"err,omitempty"`
}

// SlowQueryLog writes one JSON line per statement slower than the
// threshold. Safe for concurrent use; nil-safe so call sites need no
// branches when the log is disabled.
type SlowQueryLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	lines     atomic.Int64
}

// NewSlowQueryLog returns a log writing to w for statements at or above
// threshold. A nil writer or non-positive threshold disables the log.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowQueryLog{w: w, threshold: threshold}
}

// Threshold reports the configured cutoff, 0 for a disabled (nil) log.
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Lines reports how many entries have been written (for tests and the
// chaos harness).
func (l *SlowQueryLog) Lines() int64 {
	if l == nil {
		return 0
	}
	return l.lines.Load()
}

// Observe writes an entry when the record's elapsed time crosses the
// threshold. Returns true when a line was written.
func (l *SlowQueryLog) Observe(rec *QueryRecord) bool {
	if l == nil || rec == nil || rec.Elapsed < l.threshold {
		return false
	}
	e := slowEntry{
		TS:         rec.Start.UTC().Format(time.RFC3339Nano),
		Tenant:     rec.Tenant,
		MTID:       rec.MTID,
		TraceID:    rec.TraceID,
		Verb:       rec.Verb,
		SQL:        rec.SQL,
		ElapsedMS:  float64(rec.Elapsed.Nanoseconds()) / 1e6,
		PlanDigest: rec.Digest,
		Err:        rec.Err,
	}
	if e.PlanDigest == "" && rec.Plan != nil {
		e.PlanDigest = rec.Plan.Digest()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return false
	}
	l.mu.Lock()
	_, werr := l.w.Write(append(line, '\n'))
	l.mu.Unlock()
	if werr != nil {
		return false
	}
	l.lines.Add(1)
	return true
}

// defaultSlowLog is the process-wide slow-query log, installed by the
// binary from -slow-query-ms and consulted by the coordinator session.
var defaultSlowLog atomic.Pointer[SlowQueryLog]

// SetSlowQueryLog installs (or, with nil, removes) the process-wide
// slow-query log.
func SetSlowQueryLog(l *SlowQueryLog) { defaultSlowLog.Store(l) }

// SlowLog returns the installed slow-query log, nil when disabled.
func SlowLog() *SlowQueryLog { return defaultSlowLog.Load() }
