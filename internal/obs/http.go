package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// publishExpvar registers the default registry's snapshot under the
// expvar name "msql" exactly once (expvar panics on duplicates).
var publishExpvar sync.Once

// Handler returns the debug surface over a registry and tracer:
//
//	/metrics        Prometheus text exposition
//	/debug/traces   recent traces as JSON (?n=, ?id= filters)
//	/debug/vars     expvar JSON, including the registry under "msql"
//	/debug/pprof/   net/http/pprof profiles
func Handler(reg *Registry, tr *Tracer) http.Handler {
	publishExpvar.Do(func() {
		expvar.Publish("msql", expvar.Func(func() any { return Default().Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("id"); id != "" {
			ts := tr.ByID(id)
			if ts == nil {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			_ = enc.Encode(ts)
			return
		}
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		_ = enc.Encode(tr.Recent(n))
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		inflight, recent := DefaultQueries.Snapshot()
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		if n >= 0 && n < len(recent) {
			recent = recent[:n]
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			InFlight []QueryRecord `json:"in_flight"`
			Recent   []QueryRecord `json:"recent"`
		}{InFlight: inflight, Recent: recent})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "msql debug surface\n\n/metrics\n/debug/traces\n/debug/queries\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts the debug surface on addr (use ":0" for an ephemeral
// port) in a background goroutine and returns the listener; closing it
// stops the server.
func Serve(addr string, reg *Registry, tr *Tracer) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg, tr)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
