package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTreeAndSnapshot(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.Start("script")
	if trace.ID() == "" || len(trace.ID()) != 16 {
		t.Fatalf("trace id = %q", trace.ID())
	}
	root := trace.StartSpan("stmt:select", KindStatement, nil)
	child := trace.StartSpan("task:T1", KindTask, root)
	child.SetAttr("site", "a:1")
	child.EndErr(errors.New("boom"))
	child.EndErr(nil) // second end must not clear the first
	root.End()
	trace.Finish()
	trace.Finish() // idempotent

	ts := tr.ByID(trace.ID())
	if ts == nil || !ts.Finished || len(ts.Spans) != 2 {
		t.Fatalf("snapshot = %+v", ts)
	}
	if ts.Spans[1].Parent != ts.Spans[0].ID {
		t.Fatalf("parenting: %+v", ts.Spans)
	}
	if ts.Spans[1].Err != "boom" || ts.Spans[1].Attrs["site"] != "a:1" {
		t.Fatalf("child span = %+v", ts.Spans[1])
	}
	tree := FormatTrace(ts)
	if !strings.Contains(tree, "task:T1 @a:1") || !strings.Contains(tree, "ERR=boom") {
		t.Fatalf("tree:\n%s", tree)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	var ids []string
	for i := 0; i < 3; i++ {
		trace := tr.Start("t")
		ids = append(ids, trace.ID())
		trace.Finish()
	}
	if tr.ByID(ids[0]) != nil {
		t.Fatal("oldest trace should have been evicted")
	}
	recent := tr.Recent(10)
	if len(recent) != 2 || recent[0].TraceID != ids[2] || recent[1].TraceID != ids[1] {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestRecordServerSpanCorrelatesAndSynthesizes(t *testing.T) {
	// Known trace id: the server span joins the live trace.
	tr := NewTracer(4)
	trace := tr.Start("script")
	call := trace.StartSpan("call:exec", KindCall, nil)
	tr.RecordServerSpan(trace.ID(), "serve:exec", KindServer, call.ID(), time.Now(), time.Millisecond, "")
	call.End()
	trace.Finish()
	ts := tr.ByID(trace.ID())
	var server *SpanSnapshot
	for i := range ts.Spans {
		if ts.Spans[i].Kind == KindServer {
			server = &ts.Spans[i]
		}
	}
	if server == nil || !server.Remote || server.Parent != uint64(call.ID()) {
		t.Fatalf("server span = %+v", server)
	}

	// Unknown trace id (coordinator in another process): a synthetic
	// finished remote trace appears with the same id.
	other := NewTracer(4)
	other.RecordServerSpan("deadbeefdeadbeef", "serve:open", KindServer, 7, time.Now(), time.Millisecond, "nope")
	syn := other.ByID("deadbeefdeadbeef")
	if syn == nil || !syn.Finished || len(syn.Spans) != 1 || syn.Spans[0].Err != "nope" {
		t.Fatalf("synthetic trace = %+v", syn)
	}
}

func TestNilSafetyAndContextPropagation(t *testing.T) {
	// All span/trace methods must be no-ops on nil receivers.
	var s *Span
	s.SetAttr("k", "v")
	s.SetServerNS(1)
	s.End()
	s.EndErr(errors.New("x"))
	if s.ID() != 0 {
		t.Fatal("nil span id")
	}
	var trace *Trace
	trace.Finish()
	if trace.ID() != "" {
		t.Fatal("nil trace id")
	}

	// StartSpan without a trace in the context returns (nil, same ctx).
	ctx := context.Background()
	sp, ctx2 := StartSpan(ctx, "x", KindCall)
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan should be inert without a trace")
	}

	// With a trace, spans nest through the context.
	tr := NewTracer(1)
	live := tr.Start("t")
	ctx = WithTrace(ctx, live)
	parent, ctx := StartSpan(ctx, "outer", KindEngine)
	childSp, _ := StartSpan(ctx, "inner", KindTask)
	if SpanFrom(ctx) != parent {
		t.Fatal("context should carry the outer span")
	}
	childSp.End()
	parent.End()
	live.Finish()
	ts := tr.ByID(live.ID())
	if len(ts.Spans) != 2 || ts.Spans[1].Parent != ts.Spans[0].ID {
		t.Fatalf("spans = %+v", ts.Spans)
	}
}

// TestConcurrentSpans exercises one trace from many goroutines; under
// -race this is the concurrency proof for the tracing plane.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(2)
	trace := tr.Start("t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := trace.StartSpan("task", KindTask, nil)
				sp.SetAttr("w", "x")
				tr.RecordServerSpan(trace.ID(), "serve", KindServer, sp.ID(), time.Now(), time.Microsecond, "")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	trace.Finish()
	ts := tr.ByID(trace.ID())
	if len(ts.Spans) != 8*50*2 {
		t.Fatalf("spans = %d, want %d", len(ts.Spans), 8*50*2)
	}
}
