package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one sample line
// per child, cumulative le-labeled buckets plus _sum and _count for
// histograms.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, e := range r.entries() {
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind)
		switch m := e.metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s %d\n", e.name, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s %d\n", e.name, m.Value())
		case *Histogram:
			writePromHistogram(w, e.name, "", m)
		case CounterVec:
			for _, k := range m.snapshotKeys() {
				fmt.Fprintf(w, "%s{%s} %d\n", e.name, promLabels(m.labels, k), m.child(k).(*Counter).Value())
			}
		case GaugeVec:
			for _, k := range m.snapshotKeys() {
				fmt.Fprintf(w, "%s{%s} %d\n", e.name, promLabels(m.labels, k), m.child(k).(*Gauge).Value())
			}
		case HistogramVec:
			for _, k := range m.snapshotKeys() {
				writePromHistogram(w, e.name, promLabels(m.labels, k), m.child(k).(*Histogram))
			}
		}
	}
}

func writePromHistogram(w io.Writer, name, labels string, h *Histogram) {
	le := func(bound string) string {
		if labels == "" {
			return `le="` + bound + `"`
		}
		return labels + `,le="` + bound + `"`
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, le(formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, le("+Inf"), cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promLabels renders a child key (label values joined by \x1f) as
// name="value" pairs.
func promLabels(names []string, key string) string {
	vals := strings.Split(key, "\x1f")
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Snapshot returns every metric as a JSON-friendly value tree, used for
// the expvar exposition: counters and gauges become numbers, vectors
// become maps keyed by comma-joined label values, histograms become
// {count, sum} objects.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	histo := func(h *Histogram) map[string]any {
		return map[string]any{"count": h.Count(), "sum": h.Sum()}
	}
	for _, e := range r.entries() {
		switch m := e.metric.(type) {
		case *Counter:
			out[e.name] = m.Value()
		case *Gauge:
			out[e.name] = m.Value()
		case *Histogram:
			out[e.name] = histo(m)
		case CounterVec:
			sub := make(map[string]any)
			for _, k := range m.snapshotKeys() {
				sub[strings.ReplaceAll(k, "\x1f", ",")] = m.child(k).(*Counter).Value()
			}
			out[e.name] = sub
		case GaugeVec:
			sub := make(map[string]any)
			for _, k := range m.snapshotKeys() {
				sub[strings.ReplaceAll(k, "\x1f", ",")] = m.child(k).(*Gauge).Value()
			}
			out[e.name] = sub
		case HistogramVec:
			sub := make(map[string]any)
			for _, k := range m.snapshotKeys() {
				sub[strings.ReplaceAll(k, "\x1f", ",")] = histo(m.child(k).(*Histogram))
			}
			out[e.name] = sub
		}
	}
	return out
}
