package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span kinds used across the federation's layers. Kinds are plain
// strings so new layers can add their own without touching this package.
const (
	KindParse     = "parse"     // MSQL script parsing
	KindStatement = "statement" // one MSQL statement's lifecycle
	KindTranslate = "translate" // substitution/disambiguation/decomposition
	KindPlan      = "plan"      // DOL plan materialization
	KindEngine    = "engine"    // one DOL program execution
	KindTask      = "task"      // one DOL task on one connection
	KindCall      = "call"      // one wire round trip to a LAM
	Kind2PC       = "2pc"       // a 2PC phase: prepare/decision/commit/rollback
	KindRecovery  = "recovery"  // in-doubt resolution
	KindServer    = "server"    // LAM server-side request handling
)

// SpanID identifies a span within its trace. 0 means "no parent".
type SpanID uint64

// Span is one timed operation inside a trace. Spans are created through
// Trace.StartSpan and closed with End/EndErr; all methods are safe to
// call on a nil span, so instrumentation points do not need to branch on
// whether tracing is active.
type Span struct {
	trace *Trace

	id       SpanID
	parent   SpanID
	name     string
	kind     string
	start    time.Time
	end      time.Time
	err      string
	remote   bool
	serverNS int64
	attrs    map[string]string
}

// ID returns the span's id, 0 for a nil span.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
	s.trace.mu.Unlock()
}

// SetServerNS records the server-reported processing time of a call span.
func (s *Span) SetServerNS(ns int64) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.serverNS = ns
	s.trace.mu.Unlock()
}

// End closes the span.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err when non-nil. Ending an already
// ended span keeps the first end time.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
		if err != nil {
			s.err = err.Error()
		}
	}
	s.trace.mu.Unlock()
}

// Trace is one statement execution's collection of spans. Traces are
// created by a Tracer, accumulate spans from any goroutine, and enter
// the tracer's ring buffer when finished.
type Trace struct {
	tracer *Tracer
	id     string
	name   string

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	spans    []*Span
	nextSpan SpanID
	finished bool
}

// ID returns the trace id, propagated over the wire for correlation.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a span under the given parent (nil for a root span).
func (t *Trace) StartSpan(name, kind string, parent *Span) *Span {
	return t.StartSpanAt(name, kind, parent.ID(), time.Now())
}

// StartSpanAt opens a span with an explicit parent id and start time —
// the form used when the parent id arrived over the wire.
func (t *Trace) StartSpanAt(name, kind string, parent SpanID, start time.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSpan++
	s := &Span{trace: t, id: t.nextSpan, parent: parent, name: name, kind: kind, start: start}
	t.spans = append(t.spans, s)
	return s
}

// Finish closes the trace and hands it to the tracer's ring buffer.
// Finishing twice is a no-op.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.end = time.Now()
	t.mu.Unlock()
	if t.tracer != nil {
		t.tracer.finish(t)
	}
}

// SpanSnapshot is the immutable exported form of a span.
type SpanSnapshot struct {
	ID       uint64            `json:"id"`
	Parent   uint64            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Kind     string            `json:"kind"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Err      string            `json:"err,omitempty"`
	Remote   bool              `json:"remote,omitempty"`
	ServerNS int64             `json:"server_ns,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// TraceSnapshot is the immutable exported form of a trace, served as
// JSON by /debug/traces and rendered by FormatTrace.
type TraceSnapshot struct {
	TraceID  string         `json:"trace_id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Finished bool           `json:"finished"`
	Spans    []SpanSnapshot `json:"spans"`
}

// snapshot copies the trace under its lock.
func (t *Trace) snapshot() *TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := &TraceSnapshot{
		TraceID:  t.id,
		Name:     t.name,
		Start:    t.start,
		Finished: t.finished,
	}
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	ts.Duration = end.Sub(t.start)
	for _, s := range t.spans {
		ss := SpanSnapshot{
			ID:       uint64(s.id),
			Parent:   uint64(s.parent),
			Name:     s.name,
			Kind:     s.kind,
			Start:    s.start,
			Err:      s.err,
			Remote:   s.remote,
			ServerNS: s.serverNS,
		}
		se := s.end
		if se.IsZero() {
			se = end
		}
		ss.Duration = se.Sub(s.start)
		if len(s.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				ss.Attrs[k] = v
			}
		}
		ts.Spans = append(ts.Spans, ss)
	}
	return ts
}

// Tracer creates traces and retains the most recent finished ones in a
// bounded ring buffer for /debug/traces and the -trace timing tree.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	byID   map[string]*Trace
	active map[string]*Trace
	done   []*Trace // oldest first
}

// NewTracer returns a tracer keeping up to capacity finished traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		cap:    capacity,
		byID:   make(map[string]*Trace),
		active: make(map[string]*Trace),
	}
}

// DefaultTracer is the process-wide tracer, sized for interactive
// debugging.
var DefaultTracer = NewTracer(64)

// newTraceID returns a 16-hex-char random id, unique across processes so
// coordinator and LAM server spans correlate.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Start opens a new trace.
func (tr *Tracer) Start(name string) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{tracer: tr, id: newTraceID(), name: name, start: time.Now()}
	tr.mu.Lock()
	tr.byID[t.id] = t
	tr.active[t.id] = t
	tr.mu.Unlock()
	return t
}

// finish moves a trace from active to the ring buffer, evicting the
// oldest finished trace beyond capacity.
func (tr *Tracer) finish(t *Trace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	delete(tr.active, t.id)
	tr.done = append(tr.done, t)
	for len(tr.done) > tr.cap {
		old := tr.done[0]
		tr.done = tr.done[1:]
		delete(tr.byID, old.id)
	}
}

// RecordServerSpan appends a server-side span to the trace with the
// given id. When the id belongs to no local trace — the coordinator runs
// in another process — a synthetic remote trace is created (and counts
// against the ring capacity once finished), so a LAM server's
// /debug/traces still shows its side of every traced statement.
func (tr *Tracer) RecordServerSpan(traceID, name, kind string, parent SpanID, start time.Time, d time.Duration, errMsg string) {
	if tr == nil || traceID == "" {
		return
	}
	tr.mu.Lock()
	t, ok := tr.byID[traceID]
	if !ok {
		t = &Trace{tracer: tr, id: traceID, name: "remote", start: start, finished: true, end: start.Add(d)}
		tr.byID[traceID] = t
		tr.done = append(tr.done, t)
		for len(tr.done) > tr.cap {
			old := tr.done[0]
			tr.done = tr.done[1:]
			delete(tr.byID, old.id)
		}
	}
	tr.mu.Unlock()
	t.mu.Lock()
	t.nextSpan++
	s := &Span{
		trace: t, id: t.nextSpan, parent: parent,
		name: name, kind: kind, start: start, end: start.Add(d),
		remote: true, err: errMsg,
	}
	t.spans = append(t.spans, s)
	if t.finished && t.end.Before(s.end) {
		t.end = s.end
	}
	t.mu.Unlock()
}

// Recent returns up to n finished traces, most recent first.
func (tr *Tracer) Recent(n int) []*TraceSnapshot {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	traces := append([]*Trace(nil), tr.done...)
	tr.mu.Unlock()
	if n <= 0 || n > len(traces) {
		n = len(traces)
	}
	out := make([]*TraceSnapshot, 0, n)
	for i := len(traces) - 1; i >= len(traces)-n; i-- {
		out = append(out, traces[i].snapshot())
	}
	return out
}

// ByID returns a snapshot of the trace with the given id (active or
// finished), nil when unknown.
func (tr *Tracer) ByID(id string) *TraceSnapshot {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	t := tr.byID[id]
	tr.mu.Unlock()
	if t == nil {
		return nil
	}
	return t.snapshot()
}

// --- context propagation ---

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// WithTrace attaches a trace to the context; spans started through
// StartSpan land in it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, nil when none.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// WithSpan attaches the current span to the context so child spans —
// including wire call spans in other packages — parent under it.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the context's current span, nil when none.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span in the context's trace, parented under the
// context's current span, and returns the span plus a context carrying
// it. With no trace in the context it returns (nil, ctx) — every Span
// method is nil-safe, so call sites need no branches.
func StartSpan(ctx context.Context, name, kind string) (*Span, context.Context) {
	t := TraceFrom(ctx)
	if t == nil {
		return nil, ctx
	}
	s := t.StartSpan(name, kind, SpanFrom(ctx))
	return s, WithSpan(ctx, s)
}

// --- timing tree rendering ---

// FormatTrace renders a snapshot as an indented per-span timing tree —
// the EXPLAIN ANALYZE-style view printed by msql -trace. Spans appear
// under their parents (unknown parents fall back to the root), siblings
// in start order; call spans with a server-side measurement show it.
func FormatTrace(ts *TraceSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s  %s\n", ts.TraceID, ts.Name, fmtDur(ts.Duration))
	children := make(map[uint64][]SpanSnapshot)
	known := make(map[uint64]bool, len(ts.Spans))
	for _, s := range ts.Spans {
		known[s.ID] = true
	}
	for _, s := range ts.Spans {
		p := s.Parent
		if p != 0 && !known[p] {
			p = 0 // orphan (e.g. remote parent in another process)
		}
		children[p] = append(children[p], s)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	}
	var walk func(id uint64, depth int)
	walk = func(id uint64, depth int) {
		for _, s := range children[id] {
			b.WriteString(strings.Repeat("  ", depth+1))
			fmt.Fprintf(&b, "%-10s %s", s.Kind, s.Name)
			if site := s.Attrs["site"]; site != "" {
				fmt.Fprintf(&b, " @%s", site)
			}
			fmt.Fprintf(&b, "  %s", fmtDur(s.Duration))
			if s.ServerNS > 0 {
				fmt.Fprintf(&b, " (server %s)", fmtDur(time.Duration(s.ServerNS)))
			}
			if s.Remote {
				b.WriteString(" [remote]")
			}
			if s.Err != "" {
				fmt.Fprintf(&b, " ERR=%s", s.Err)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
