package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// PlanNode is the shared stats carrier for query-plan observability. Every
// tier of the federation — coordinator, DOL engine, LAM site, local volcano
// executor — describes the operator it ran as a PlanNode and hangs its
// inputs underneath, so one tree spans the whole multidatabase statement.
//
// The struct is deliberately plain (exported scalar fields, no interfaces)
// so it rides the gob wire protocol between LAM client and server and
// marshals to JSON for EXPLAIN FORMAT JSON and /debug/queries unchanged.
// obs sits below storage in the import graph, so page statistics are plain
// counters here; the executor bridges them from storage.PageCounters.
type PlanNode struct {
	// Op names the operator: "select", "scan", "index-probe", "hash-join",
	// "task", "ship", "multitx", ...
	Op string `json:"op"`
	// Detail is the operator-specific annotation (table and key columns for
	// a probe, database for a task, VITAL/COMP flags for a scope entry).
	Detail string `json:"detail,omitempty"`
	// Children are the operator's inputs, outermost first.
	Children []*PlanNode `json:"children,omitempty"`

	// Analyzed marks that the runtime statistics below were actually
	// collected (EXPLAIN ANALYZE) rather than left at zero (plain EXPLAIN).
	Analyzed bool `json:"analyzed,omitempty"`
	// Rows is the total number of rows the operator emitted.
	Rows int64 `json:"rows,omitempty"`
	// Loops counts how many times the operator was restarted (inner side
	// of a nested loop resets once per outer row).
	Loops int64 `json:"loops,omitempty"`
	// TimeNS is wall time attributed to this operator, exclusive of
	// children where the executor can tell them apart.
	TimeNS int64 `json:"time_ns,omitempty"`
	// PageHits / PageMisses are buffer-pool fetches attributed to this
	// operator's row accesses.
	PageHits   int64 `json:"page_hits,omitempty"`
	PageMisses int64 `json:"page_misses,omitempty"`
}

// Add appends a child node and returns it, for fluent tree building.
func (n *PlanNode) Add(child *PlanNode) *PlanNode {
	n.Children = append(n.Children, child)
	return child
}

// TotalRows sums Rows over the whole subtree rooted at n.
func (n *PlanNode) TotalRows() int64 {
	if n == nil {
		return 0
	}
	total := n.Rows
	for _, c := range n.Children {
		total += c.TotalRows()
	}
	return total
}

// Digest returns a stable hash of the plan *shape* (operators and details,
// not runtime statistics), so the slow-query log can group statements that
// chose the same plan. The digest is deliberately insensitive to ANALYZE
// annotations: the same query planned the same way digests identically
// whether or not it was executed.
func (n *PlanNode) Digest() string {
	h := fnv.New64a()
	n.digestInto(h)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (n *PlanNode) digestInto(h interface{ Write([]byte) (int, error) }) {
	if n == nil {
		return
	}
	h.Write([]byte(n.Op))
	h.Write([]byte{0})
	h.Write([]byte(n.Detail))
	h.Write([]byte{1})
	for _, c := range n.Children {
		c.digestInto(h)
	}
	h.Write([]byte{2})
}

// Render pretty-prints the tree in the style of EXPLAIN output:
//
//	select
//	├─ scan emp (rows=30 loops=1 pages=4+0)
//	└─ hash-join dept.dno (rows=30 loops=1)
func (n *PlanNode) Render() string {
	var b strings.Builder
	n.renderInto(&b, "", "")
	return b.String()
}

func (n *PlanNode) renderInto(b *strings.Builder, self, indent string) {
	b.WriteString(self)
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	if n.Analyzed {
		fmt.Fprintf(b, " (rows=%d loops=%d time=%.3fms", n.Rows, n.Loops, float64(n.TimeNS)/1e6)
		if n.PageHits != 0 || n.PageMisses != 0 {
			fmt.Fprintf(b, " pages=%d+%d", n.PageHits, n.PageMisses)
		}
		b.WriteString(")")
	}
	b.WriteString("\n")
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			c.renderInto(b, indent+"└─ ", indent+"   ")
		} else {
			c.renderInto(b, indent+"├─ ", indent+"│  ")
		}
	}
}

// JSON marshals the tree for EXPLAIN FORMAT JSON (indented, stable).
func (n *PlanNode) JSON() string {
	out, err := json.MarshalIndent(n, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q:%q}", "error", err.Error())
	}
	return string(out)
}

// Clone deep-copies the subtree (the executor hands trees to the inventory
// while it may still be mutating its own copy).
func (n *PlanNode) Clone() *PlanNode {
	if n == nil {
		return nil
	}
	c := *n
	c.Children = nil
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return &c
}

// Find returns the first node in preorder whose Op matches, or nil. Tests
// and tooling use it to pick operators out of a rendered tree.
func (n *PlanNode) Find(op string) *PlanNode {
	if n == nil {
		return nil
	}
	if n.Op == op {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(op); f != nil {
			return f
		}
	}
	return nil
}

// FindAll returns every node in preorder whose Op matches.
func (n *PlanNode) FindAll(op string) []*PlanNode {
	if n == nil {
		return nil
	}
	var out []*PlanNode
	if n.Op == op {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, c.FindAll(op)...)
	}
	return out
}

// Ops returns the sorted multiset of operator names in the tree, a compact
// fingerprint for assertions.
func (n *PlanNode) Ops() []string {
	var out []string
	var walk func(*PlanNode)
	walk = func(p *PlanNode) {
		if p == nil {
			return
		}
		out = append(out, p.Op)
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(n)
	sort.Strings(out)
	return out
}
