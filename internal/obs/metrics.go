// Package obs is the federation's observability plane: a zero-dependency
// tracing and metrics subsystem threaded through every layer of the MSQL
// execution environment (DESIGN.md §8). The multidatabase pipeline —
// MSQL → DOL plan → engine → LAMs over heterogeneous sites — is exactly
// the kind of multi-hop system where latency and failures are invisible
// without instrumentation; obs makes each statement's journey observable
// as a trace of spans and each subsystem's behavior observable as
// counters, gauges, and histograms with Prometheus-text and expvar
// exposition.
//
// The package deliberately depends only on the standard library so every
// internal package (wire, lam, dolengine, mtlog, core) can import it
// without cycles or new third-party dependencies.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (breaker state, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative-style buckets
// (upper bounds in ascending order, +Inf implicit). Observation is
// lock-free: one atomic add on the matching bucket, the count, and a CAS
// loop on the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets returns the default latency bucket bounds in seconds,
// spanning 100µs to 10s — wide enough for in-process calls and
// fault-injected WAN-ish round trips alike.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// vec is the shared labeled-children machinery behind CounterVec,
// GaugeVec, and HistogramVec: a read-mostly map from joined label values
// to child metrics. Lookup of an existing child takes one RLock.
type vec struct {
	labels []string
	newFn  func() any

	mu       sync.RWMutex
	children map[string]any
	keys     []string // insertion-ordered for stable exposition
}

func newVec(labels []string, newFn func() any) *vec {
	return &vec{labels: labels, newFn: newFn, children: make(map[string]any)}
}

func labelKey(vals []string) string { return strings.Join(vals, "\x1f") }

func (v *vec) with(vals ...string) any {
	if len(vals) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric expects %d label values, got %d", len(v.labels), len(vals)))
	}
	k := labelKey(vals)
	v.mu.RLock()
	c, ok := v.children[k]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[k]; ok {
		return c
	}
	c = v.newFn()
	v.children[k] = c
	v.keys = append(v.keys, k)
	return c
}

// snapshotKeys returns the child keys in insertion order.
func (v *vec) snapshotKeys() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]string(nil), v.keys...)
}

func (v *vec) child(key string) any {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.children[key]
}

// CounterVec is a Counter family partitioned by label values.
type CounterVec struct{ *vec }

// With returns (creating on first use) the child for the label values.
func (c CounterVec) With(vals ...string) *Counter { return c.with(vals...).(*Counter) }

// GaugeVec is a Gauge family partitioned by label values.
type GaugeVec struct{ *vec }

// With returns (creating on first use) the child for the label values.
func (g GaugeVec) With(vals ...string) *Gauge { return g.with(vals...).(*Gauge) }

// HistogramVec is a Histogram family partitioned by label values.
type HistogramVec struct {
	*vec
}

// With returns (creating on first use) the child for the label values.
func (h HistogramVec) With(vals ...string) *Histogram { return h.with(vals...).(*Histogram) }

// entry is one registered metric with its metadata.
type entry struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	metric any    // *Counter, *Gauge, *Histogram, CounterVec, GaugeVec, HistogramVec
}

// Registry holds named metrics. Registration is get-or-register: asking
// for the same name again returns the existing metric, so packages can
// declare their metrics as package variables without coordinating
// initialization order, and tests can re-register concurrently.
type Registry struct {
	mu    sync.RWMutex
	byNam map[string]*entry
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNam: make(map[string]*entry)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every layer records into.
func Default() *Registry { return defaultRegistry }

// register implements get-or-register. A name registered with a
// different metric shape is a programming error and panics.
func (r *Registry) register(name, help, kind string, mk func() any) any {
	r.mu.RLock()
	e, ok := r.byNam[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if e, ok = r.byNam[name]; !ok {
			e = &entry{name: name, help: help, kind: kind, metric: mk()}
			r.byNam[name] = e
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, not %s", name, e.kind, kind))
	}
	return e.metric
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, "counter", func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s is labeled; use CounterVec", name))
	}
	return c
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	m := r.register(name, help, "counter", func() any {
		return CounterVec{newVec(labels, func() any { return &Counter{} })}
	})
	v, ok := m.(CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s is unlabeled; use Counter", name))
	}
	return v
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, "gauge", func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s is labeled; use GaugeVec", name))
	}
	return g
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	m := r.register(name, help, "gauge", func() any {
		return GaugeVec{newVec(labels, func() any { return &Gauge{} })}
	})
	v, ok := m.(GaugeVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s is unlabeled; use Gauge", name))
	}
	return v
}

// Histogram registers (or returns) an unlabeled histogram. A nil bounds
// slice uses DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	m := r.register(name, help, "histogram", func() any { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s is labeled; use HistogramVec", name))
	}
	return h
}

// HistogramVec registers (or returns) a labeled histogram family. A nil
// bounds slice uses DurationBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	m := r.register(name, help, "histogram", func() any {
		return HistogramVec{newVec(labels, func() any { return newHistogram(bounds) })}
	})
	v, ok := m.(HistogramVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s is unlabeled; use Histogram", name))
	}
	return v
}

// entries returns the registered entries in registration order.
func (r *Registry) entries() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byNam[name])
	}
	return out
}
