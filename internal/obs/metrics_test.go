package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := reg.Gauge("g", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	h := reg.Histogram("h_seconds", "help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 5.54 || s > 5.56 {
		t.Fatalf("sum = %v", s)
	}
}

func TestRegistryGetOrRegister(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same", "help")
	b := reg.Counter("same", "help")
	if a != b {
		t.Fatal("re-registering a name must return the same collector")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name as a different kind must panic")
		}
	}()
	reg.Gauge("same", "help")
}

// TestConcurrentRegistrationAndObservation hammers one registry from many
// goroutines that simultaneously register (same names) and observe; run
// under -race this is the concurrency-safety proof for the metrics plane.
func TestConcurrentRegistrationAndObservation(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("hits_total", "h").Inc()
				reg.CounterVec("site_hits_total", "h", "site").With(fmt.Sprintf("site%d", i%3)).Inc()
				reg.Gauge("depth", "h").Set(int64(i))
				reg.Histogram("lat_seconds", "h", nil).Observe(float64(i) / 1000)
				reg.HistogramVec("site_lat_seconds", "h", nil, "site").With("s").ObserveSince(time.Now())
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("hits_total", "h").Value(); got != workers*iters {
		t.Fatalf("hits_total = %d, want %d", got, workers*iters)
	}
	var vecTotal int64
	for _, s := range []string{"site0", "site1", "site2"} {
		vecTotal += reg.CounterVec("site_hits_total", "h", "site").With(s).Value()
	}
	if vecTotal != workers*iters {
		t.Fatalf("site_hits_total = %d, want %d", vecTotal, workers*iters)
	}
	if got := reg.Histogram("lat_seconds", "h", nil).Count(); got != workers*iters {
		t.Fatalf("lat_seconds count = %d, want %d", got, workers*iters)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total", "a plain counter").Add(3)
	reg.CounterVec("by_site_total", "per site", "site", "op").With("a:1", "exec").Inc()
	reg.Gauge("level", "a gauge").Set(-2)
	h := reg.HistogramVec("rt_seconds", "latency", []float64{0.1, 1}, "site")
	h.With("a:1").Observe(0.5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP plain_total a plain counter",
		"# TYPE plain_total counter",
		"plain_total 3",
		`by_site_total{site="a:1",op="exec"} 1`,
		"# TYPE level gauge",
		"level -2",
		"# TYPE rt_seconds histogram",
		`rt_seconds_bucket{site="a:1",le="0.1"} 0`,
		`rt_seconds_bucket{site="a:1",le="1"} 1`,
		`rt_seconds_bucket{site="a:1",le="+Inf"} 1`,
		`rt_seconds_sum{site="a:1"} 0.5`,
		`rt_seconds_count{site="a:1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n_total", "h").Add(2)
	reg.CounterVec("v_total", "h", "k").With("x").Add(4)
	reg.Histogram("h_seconds", "h", nil).Observe(1)
	snap := reg.Snapshot()
	if snap["n_total"] != int64(2) {
		t.Fatalf("n_total = %v", snap["n_total"])
	}
	vec, ok := snap["v_total"].(map[string]any)
	if !ok || vec["x"] != int64(4) {
		t.Fatalf("v_total = %v", snap["v_total"])
	}
	hist, ok := snap["h_seconds"].(map[string]any)
	if !ok || hist["count"] != int64(1) {
		t.Fatalf("h_seconds = %v", snap["h_seconds"])
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "h", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}
