package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func newTestPage() page {
	b := make([]byte, PageSize)
	initPage(b)
	return page{b}
}

func TestPageInsertReadRoundtrip(t *testing.T) {
	p := newTestPage()
	var slots []int
	var want [][]byte
	for i := 0; i < 50; i++ {
		data := []byte(fmt.Sprintf("tuple-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		s, err := p.insert(data)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		slots = append(slots, s)
		want = append(want, data)
	}
	for i, s := range slots {
		got, err := p.read(s)
		if err != nil {
			t.Fatalf("read slot %d: %v", s, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("slot %d: got %q want %q", s, got, want[i])
		}
	}
	if p.liveCount() != 50 {
		t.Fatalf("liveCount = %d, want 50", p.liveCount())
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	p := newTestPage()
	a, _ := p.insert([]byte("aaaa"))
	b, _ := p.insert([]byte("bbbb"))
	if err := p.delete(a); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := p.read(a); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("read deleted slot: err = %v, want ErrBadSlot", err)
	}
	if err := p.delete(a); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double delete: err = %v, want ErrBadSlot", err)
	}
	c, err := p.insert([]byte("cccc"))
	if err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	if c != a {
		t.Fatalf("dead slot not reused: got slot %d, want %d", c, a)
	}
	got, _ := p.read(b)
	if string(got) != "bbbb" {
		t.Fatalf("untouched slot clobbered: %q", got)
	}
}

func TestPageCompactionReclaimsHoles(t *testing.T) {
	p := newTestPage()
	// Fill with 100-byte tuples until full.
	tuple := bytes.Repeat([]byte{0xAB}, 100)
	var slots []int
	for {
		s, err := p.insert(tuple)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("insert: %v", err)
			}
			break
		}
		slots = append(slots, s)
	}
	// Delete every other tuple: plenty of total free space, all fragmented.
	freed := 0
	for i := 0; i < len(slots); i += 2 {
		if err := p.delete(slots[i]); err != nil {
			t.Fatalf("delete: %v", err)
		}
		freed += 100
	}
	// A tuple larger than any single hole must still fit via compaction.
	big := bytes.Repeat([]byte{0xCD}, freed-slotSize-8)
	s, err := p.insert(big)
	if err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	got, err := p.read(s)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("compacted read: err=%v", err)
	}
	// Survivors are intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.read(slots[i])
		if err != nil || !bytes.Equal(got, tuple) {
			t.Fatalf("survivor slot %d damaged after compact: err=%v", slots[i], err)
		}
	}
}

func TestPageUpdate(t *testing.T) {
	p := newTestPage()
	s, _ := p.insert([]byte("hello world"))
	// Shrink in place.
	if err := p.update(s, []byte("hi")); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	got, _ := p.read(s)
	if string(got) != "hi" {
		t.Fatalf("after shrink: %q", got)
	}
	// Grow within the page.
	big := bytes.Repeat([]byte{0x42}, 500)
	if err := p.update(s, big); err != nil {
		t.Fatalf("grow: %v", err)
	}
	got, _ = p.read(s)
	if !bytes.Equal(got, big) {
		t.Fatalf("after grow: %d bytes", len(got))
	}
	// Grow past what the page can hold.
	if err := p.update(s, bytes.Repeat([]byte{1}, PageSize)); !errors.Is(err, ErrPageFull) {
		t.Fatalf("oversize update: err = %v, want ErrPageFull", err)
	}
	// The original survives a failed update.
	got, _ = p.read(s)
	if !bytes.Equal(got, big) {
		t.Fatalf("tuple damaged by failed update")
	}
}

func TestPageSealVerify(t *testing.T) {
	p := newTestPage()
	p.insert([]byte("some data"))
	sealPage(p.b)
	if err := verifyPage(p.b); err != nil {
		t.Fatalf("verify sealed page: %v", err)
	}
	// Flip one payload byte: torn page.
	p.b[PageSize-3] ^= 0xFF
	if err := verifyPage(p.b); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupted page: err = %v, want ErrBadChecksum", err)
	}
	p.b[PageSize-3] ^= 0xFF
	if err := verifyPage(p.b); err != nil {
		t.Fatalf("restored page: %v", err)
	}
	// A structurally invalid header fails even with a matching CRC.
	p.setFreeHigh(3) // below the header
	sealPage(p.b)
	if err := verifyPage(p.b); !errors.Is(err, ErrBadPageShape) {
		t.Fatalf("bad shape: err = %v, want ErrBadPageShape", err)
	}
}

func TestPageRejectsOversizeTuple(t *testing.T) {
	p := newTestPage()
	if _, err := p.insert(make([]byte, maxTuple+1)); !errors.Is(err, ErrTupleTooBig) {
		t.Fatalf("err = %v, want ErrTupleTooBig", err)
	}
	// Exactly maxTuple fits an empty page.
	if _, err := p.insert(make([]byte, maxTuple)); err != nil {
		t.Fatalf("maxTuple insert: %v", err)
	}
}
