package storage

import (
	"errors"
	"fmt"
)

// RID addresses one tuple: a page number and a slot within it.
type RID struct {
	Page uint32
	Slot uint16
}

// NilRID is an address no tuple can have (page numbers are dense from
// zero, but slot 0xFFFF exceeds any page's slot capacity).
var NilRID = RID{Page: ^uint32(0), Slot: ^uint16(0)}

// IsNil reports whether the RID is the sentinel.
func (r RID) IsNil() bool { return r == NilRID }

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile is one table's pages, accessed through a shared buffer pool.
// It keeps an in-memory free-space map (bytes free per page, rebuilt on
// open) so inserts find a page in O(1) without touching the heap.
//
// HeapFile methods are not safe for concurrent use on the same table;
// relstore's table locks serialize them, exactly as they serialized the
// map-backed tables before.
type HeapFile struct {
	pool  *Pool
	id    FileID
	pages uint32
	free  []uint16 // free bytes per page, insert-usable
	// The free-space map's index side: pages whose free space crossed
	// openThreshold are candidates for inserts that do not fit the last
	// page, so placement never scans the whole file.
	open     []uint32
	openMark map[uint32]bool
}

// openThreshold is the free-byte level at which a drained page becomes
// an insert candidate again.
const openThreshold = PageSize / 4

// OpenOptions controls how OpenHeapFile treats damaged pages.
type OpenOptions struct {
	// Repair reinitializes pages that fail CRC or shape verification
	// (torn by a crash between allocation and checkpoint) instead of
	// failing the open. Repaired pages lose their tuples.
	Repair bool
}

// NewHeapFile creates an empty heap over a fresh backing.
func NewHeapFile(pool *Pool, b Backing) *HeapFile {
	return &HeapFile{pool: pool, id: pool.Register(b), openMark: make(map[uint32]bool)}
}

// noteFree records a page's insertable free space (what an insert could
// use after in-page compaction) and maintains the open list.
func (h *HeapFile) noteFree(pg uint32, free int) {
	if free < 0 {
		free = 0
	}
	h.free[pg] = uint16(free)
	if free >= openThreshold && !h.openMark[pg] && pg != h.pages-1 {
		h.openMark[pg] = true
		h.open = append(h.open, pg)
	}
}

// OpenHeapFile attaches an existing backing and rebuilds the free-space
// map by scanning every page, verifying CRCs along the way. It returns
// the number of repaired pages (always zero unless opts.Repair).
func OpenHeapFile(pool *Pool, b Backing, opts OpenOptions) (*HeapFile, int, error) {
	h := &HeapFile{pool: pool, id: pool.Register(b)}
	n, err := b.NumPages()
	if err != nil {
		pool.Deregister(h.id)
		return nil, 0, err
	}
	h.pages = n
	h.free = make([]uint16, n)
	h.openMark = make(map[uint32]bool)
	repaired := 0
	for pg := uint32(0); pg < n; pg++ {
		f, err := pool.Fetch(h.id, pg)
		if err != nil {
			if !opts.Repair || !(errors.Is(err, ErrBadChecksum) || errors.Is(err, ErrBadPageShape)) {
				pool.Deregister(h.id)
				return nil, repaired, err
			}
			// Reinitialize the torn page in place.
			f, err = h.resetPage(pg)
			if err != nil {
				pool.Deregister(h.id)
				return nil, repaired, err
			}
			repaired++
		}
		h.noteFree(pg, page{f.Data()}.contiguousAfterCompact(true))
		pool.Unpin(f, false)
	}
	return h, repaired, nil
}

// resetPage overwrites a damaged page with a sealed empty page and
// fetches it back through the pool.
func (h *HeapFile) resetPage(pg uint32) (*Frame, error) {
	var buf [PageSize]byte
	initPage(buf[:])
	sealPage(buf[:])
	if err := h.backing().WritePage(pg, buf[:]); err != nil {
		return nil, err
	}
	return h.pool.Fetch(h.id, pg)
}

func (h *HeapFile) backing() Backing {
	h.pool.mu.Lock()
	defer h.pool.mu.Unlock()
	return h.pool.backings[h.id]
}

// NumPages returns the heap's page count.
func (h *HeapFile) NumPages() uint32 { return h.pages }

// Close flushes the heap's dirty pages and detaches it from the pool.
func (h *HeapFile) Close() error {
	if err := h.pool.FlushFile(h.id); err != nil {
		return err
	}
	h.pool.Deregister(h.id)
	return nil
}

// Drop detaches without flushing (DROP TABLE).
func (h *HeapFile) Drop() { h.pool.Deregister(h.id) }

// Flush writes back the heap's dirty pages.
func (h *HeapFile) Flush() error { return h.pool.FlushFile(h.id) }

// Sync fsyncs the backing.
func (h *HeapFile) Sync() error { return h.backing().Sync() }

// Insert places a tuple on a page with room — the last-used page when
// possible, any page with space otherwise, a fresh page as a last
// resort — and returns its RID.
func (h *HeapFile) Insert(data []byte) (RID, error) {
	if len(data) > maxTuple {
		return NilRID, fmt.Errorf("%w (%d bytes)", ErrTupleTooBig, len(data))
	}
	// Placement: the last page first (append locality), then drained
	// pages from the open list, then a fresh page. The free-space map is
	// conservative (freeSpace charges a slot), so a nominated page
	// nearly always fits; a rare ErrPageFull just falls through.
	if h.pages > 0 && int(h.free[h.pages-1]) >= len(data) {
		rid, ok, err := h.tryInsert(h.pages-1, data)
		if err != nil {
			return NilRID, err
		}
		if ok {
			return rid, nil
		}
	}
	for len(h.open) > 0 {
		pg := h.open[len(h.open)-1]
		if int(h.free[pg]) < len(data) {
			// Stale candidate (space consumed since it was listed).
			if int(h.free[pg]) < openThreshold {
				h.open = h.open[:len(h.open)-1]
				delete(h.openMark, pg)
			} else {
				break // has room for smaller tuples; keep listed
			}
			continue
		}
		rid, ok, err := h.tryInsert(pg, data)
		if err != nil {
			return NilRID, err
		}
		if ok {
			return rid, nil
		}
		h.open = h.open[:len(h.open)-1]
		delete(h.openMark, pg)
	}
	// The page losing last-page status stays reachable via the open list
	// if it still has room for smaller tuples.
	if h.pages > 0 {
		prev := h.pages - 1
		if int(h.free[prev]) >= openThreshold && !h.openMark[prev] {
			h.openMark[prev] = true
			h.open = append(h.open, prev)
		}
	}
	pg, f, err := h.pool.Alloc(h.id)
	if err != nil {
		return NilRID, err
	}
	p := page{f.Data()}
	slot, err := p.insert(data)
	if err != nil {
		h.pool.Unpin(f, true)
		return NilRID, err
	}
	h.pages = pg + 1
	h.free = append(h.free, 0)
	h.noteFree(pg, p.contiguousAfterCompact(true))
	h.pool.Unpin(f, true)
	return RID{Page: pg, Slot: uint16(slot)}, nil
}

// tryInsert attempts an insert on one page.
func (h *HeapFile) tryInsert(pg uint32, data []byte) (RID, bool, error) {
	f, err := h.pool.Fetch(h.id, pg)
	if err != nil {
		return NilRID, false, err
	}
	p := page{f.Data()}
	slot, err := p.insert(data)
	if err != nil {
		h.free[pg] = uint16(p.freeSpace())
		h.pool.Unpin(f, false)
		if errors.Is(err, ErrPageFull) {
			return NilRID, false, nil
		}
		return NilRID, false, err
	}
	h.noteFree(pg, p.contiguousAfterCompact(true))
	h.pool.Unpin(f, true)
	return RID{Page: pg, Slot: uint16(slot)}, true, nil
}

// Read returns a copy of the tuple at rid.
func (h *HeapFile) Read(rid RID) ([]byte, error) {
	return h.ReadCounted(rid, nil)
}

// ReadCounted is Read with pool traffic additionally recorded on pc
// (nil-safe), attributing the page fetch to one statement's operator.
func (h *HeapFile) ReadCounted(rid RID, pc *PageCounters) ([]byte, error) {
	f, err := h.pool.FetchCounted(h.id, rid.Page, pc)
	if err != nil {
		return nil, err
	}
	data, err := page{f.Data()}.read(int(rid.Slot))
	if err != nil {
		h.pool.Unpin(f, false)
		return nil, fmt.Errorf("%w at %s", err, rid)
	}
	out := append([]byte(nil), data...)
	h.pool.Unpin(f, false)
	return out, nil
}

// Delete removes the tuple at rid.
func (h *HeapFile) Delete(rid RID) error {
	f, err := h.pool.Fetch(h.id, rid.Page)
	if err != nil {
		return err
	}
	p := page{f.Data()}
	if err := p.delete(int(rid.Slot)); err != nil {
		h.pool.Unpin(f, false)
		return fmt.Errorf("%w at %s", err, rid)
	}
	h.noteFree(rid.Page, p.contiguousAfterCompact(true))
	h.pool.Unpin(f, true)
	return nil
}

// Update replaces the tuple at rid, in place when it fits, relocating
// to another page otherwise. It returns the tuple's RID afterwards,
// which callers must store back.
func (h *HeapFile) Update(rid RID, data []byte) (RID, error) {
	f, err := h.pool.Fetch(h.id, rid.Page)
	if err != nil {
		return NilRID, err
	}
	p := page{f.Data()}
	err = p.update(int(rid.Slot), data)
	if err == nil {
		h.noteFree(rid.Page, p.contiguousAfterCompact(true))
		h.pool.Unpin(f, true)
		return rid, nil
	}
	if !errors.Is(err, ErrPageFull) {
		h.pool.Unpin(f, false)
		return NilRID, fmt.Errorf("%w at %s", err, rid)
	}
	// Relocate: delete here, insert elsewhere.
	if derr := p.delete(int(rid.Slot)); derr != nil {
		h.pool.Unpin(f, false)
		return NilRID, fmt.Errorf("%w at %s", derr, rid)
	}
	h.noteFree(rid.Page, p.contiguousAfterCompact(true))
	h.pool.Unpin(f, true)
	return h.Insert(data)
}

// Scan iterates the heap page-at-a-time in (page, slot) order, calling
// fn with each live tuple. The tuple bytes alias the pinned page and are
// only valid during the call. fn returning false stops the scan.
func (h *HeapFile) Scan(fn func(rid RID, data []byte) bool) error {
	return h.ScanCounted(fn, nil)
}

// ScanCounted is Scan with pool traffic additionally recorded on pc
// (nil-safe), attributing the page fetches to one statement's operator.
func (h *HeapFile) ScanCounted(fn func(rid RID, data []byte) bool, pc *PageCounters) error {
	for pg := uint32(0); pg < h.pages; pg++ {
		f, err := h.pool.FetchCounted(h.id, pg, pc)
		if err != nil {
			return err
		}
		p := page{f.Data()}
		n := p.slotCount()
		for s := 0; s < n; s++ {
			off, ln := p.slot(s)
			if off == 0 && ln == 0 {
				continue
			}
			if !fn(RID{Page: pg, Slot: uint16(s)}, f.Data()[off:off+ln]) {
				h.pool.Unpin(f, false)
				return nil
			}
		}
		h.pool.Unpin(f, false)
	}
	return nil
}
