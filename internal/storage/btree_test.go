package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestBTreeBasic(t *testing.T) {
	tr := NewBTree()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("empty tree returned a value")
	}
	if replaced := tr.Insert([]byte("k"), 1); replaced {
		t.Fatal("first insert reported replaced")
	}
	if replaced := tr.Insert([]byte("k"), 2); !replaced {
		t.Fatal("second insert did not report replaced")
	}
	if v, ok := tr.Get([]byte("k")); !ok || v != 2 {
		t.Fatalf("got %d,%v want 2,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if !tr.Delete([]byte("k")) {
		t.Fatal("delete of present key returned false")
	}
	if tr.Delete([]byte("k")) {
		t.Fatal("delete of absent key returned true")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

// TestBTreeProperty drives the tree with a random operation mix, checking
// it against a reference map and validating structural invariants as it
// goes. Enough keys are used to force multiple levels of splits, and the
// delete phase drains it far enough to force merges and root collapse.
func TestBTreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewBTree()
	ref := make(map[string]int64)
	key := func() []byte {
		return []byte(fmt.Sprintf("key-%06d", rng.Intn(20000)))
	}
	for step := 0; step < 60000; step++ {
		k := key()
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert-heavy to grow depth
			v := rng.Int63()
			replaced := tr.Insert(k, v)
			_, had := ref[string(k)]
			if replaced != had {
				t.Fatalf("step %d: Insert replaced=%v, ref had=%v", step, replaced, had)
			}
			ref[string(k)] = v
		case 6, 7: // delete
			deleted := tr.Delete(k)
			_, had := ref[string(k)]
			if deleted != had {
				t.Fatalf("step %d: Delete=%v, ref had=%v", step, deleted, had)
			}
			delete(ref, string(k))
		default: // lookup
			v, ok := tr.Get(k)
			want, had := ref[string(k)]
			if ok != had || (ok && v != want) {
				t.Fatalf("step %d: Get=%d,%v want %d,%v", step, v, ok, want, had)
			}
		}
		if step%2000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("step %d: Len=%d ref=%d", step, tr.Len(), len(ref))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after mixed phase: %v", err)
	}

	// Drain completely, checking invariants through the merge cascade.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete([]byte(k)) {
			t.Fatalf("drain: key %q missing", k)
		}
		if i%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("drain %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("after drain Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("empty tree: %v", err)
	}
}

func TestBTreeAscendOrder(t *testing.T) {
	tr := NewBTree()
	rng := rand.New(rand.NewSource(7))
	ref := make(map[string]int64)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("k%08d", rng.Intn(100000))
		v := int64(i)
		tr.Insert([]byte(k), v)
		ref[k] = v
	}
	want := make([]string, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)

	var got []string
	tr.Ascend(nil, func(k []byte, v int64) bool {
		got = append(got, string(k))
		if v != ref[string(k)] {
			t.Fatalf("key %q: value %d, want %d", k, v, ref[string(k)])
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Ascend yielded %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: %q, want %q", i, got[i], want[i])
		}
	}

	// Ascend from a midpoint starts at the first key >= from.
	mid := want[len(want)/2]
	var first string
	tr.Ascend([]byte(mid), func(k []byte, v int64) bool {
		first = string(k)
		return false
	})
	if first != mid {
		t.Fatalf("Ascend(%q) started at %q", mid, first)
	}
	// From a key between two present keys.
	between := append([]byte(mid), 0x00)
	tr.Ascend(between, func(k []byte, v int64) bool {
		if bytes.Compare(k, between) < 0 {
			t.Fatalf("Ascend(%q) yielded smaller key %q", between, k)
		}
		return false
	})
}
