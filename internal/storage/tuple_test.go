package storage

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"msql/internal/sqlval"
)

func TestRowCodecRoundtrip(t *testing.T) {
	rows := [][]sqlval.Value{
		{},
		{sqlval.Null()},
		{sqlval.Int(0), sqlval.Int(-1), sqlval.Int(math.MaxInt64), sqlval.Int(math.MinInt64)},
		{sqlval.Float(0), sqlval.Float(-3.25), sqlval.Float(math.Inf(1))},
		{sqlval.Str(""), sqlval.Str("hello"), sqlval.Str("emb\x00edded")},
		{sqlval.Bool(true), sqlval.Bool(false), sqlval.Null(), sqlval.Int(42), sqlval.Str("mix")},
	}
	for _, row := range rows {
		enc := EncodeRow(nil, row)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", row, err)
		}
		if len(dec) != len(row) {
			t.Fatalf("len %d, want %d", len(dec), len(row))
		}
		if len(row) > 0 && !reflect.DeepEqual(dec, row) {
			t.Fatalf("roundtrip mismatch: got %v want %v", dec, row)
		}
	}
}

func TestRowCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // huge count
		{2, tagInt},                  // truncated varint
		{1, tagFloat, 1, 2, 3},       // short float
		{1, tagString, 10, 'a', 'b'}, // string length past end
		{1, 99},                      // unknown tag
	}
	for i, c := range cases {
		if _, err := DecodeRow(c); err == nil {
			t.Fatalf("case %d: garbage decoded without error", i)
		}
	}
}

func TestEncodeKeyOrdering(t *testing.T) {
	// Values listed in their expected SQL order. bytes.Compare on the
	// encodings must agree for every pair.
	ordered := []sqlval.Value{
		sqlval.Null(),
		sqlval.Bool(false),
		sqlval.Bool(true),
		sqlval.Int(math.MinInt64),
		sqlval.Int(-7),
		sqlval.Int(0),
		sqlval.Int(7),
		sqlval.Int(math.MaxInt64),
		sqlval.Float(math.Inf(-1)),
		sqlval.Float(-2.5),
		sqlval.Float(0),
		sqlval.Float(1e-10),
		sqlval.Float(3.25),
		sqlval.Float(math.Inf(1)),
		sqlval.Str(""),
		sqlval.Str("a"),
		sqlval.Str("a\x00b"),
		sqlval.Str("aa"),
		sqlval.Str("ab"),
		sqlval.Str("b"),
	}
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			// Only compare within a kind (plus NULL vs anything): key
			// columns are single-kinded, cross-kind order is unspecified
			// beyond NULL-first.
			ki, kj := ordered[i].K, ordered[j].K
			if ki != kj && ki != sqlval.KindNull {
				continue
			}
			a := EncodeKey(nil, []sqlval.Value{ordered[i]})
			b := EncodeKey(nil, []sqlval.Value{ordered[j]})
			if bytes.Compare(a, b) >= 0 {
				t.Errorf("enc(%v) >= enc(%v), want <", ordered[i], ordered[j])
			}
		}
	}
}

func TestEncodeKeyCompositeNoPrefixConfusion(t *testing.T) {
	// ("a","b") vs ("ab","") — a naive concatenation would collide or
	// misorder; the terminator keeps components distinct.
	ab := EncodeKey(nil, []sqlval.Value{sqlval.Str("a"), sqlval.Str("b")})
	ab2 := EncodeKey(nil, []sqlval.Value{sqlval.Str("ab"), sqlval.Str("")})
	if bytes.Equal(ab, ab2) {
		t.Fatal("composite keys collided")
	}
	if bytes.Compare(ab, ab2) >= 0 {
		t.Fatal(`("a","b") should sort before ("ab","")`)
	}
	// Embedded NUL in a component still orders correctly against its
	// extension.
	k1 := EncodeKey(nil, []sqlval.Value{sqlval.Str("a\x00")})
	k2 := EncodeKey(nil, []sqlval.Value{sqlval.Str("a\x00\x00")})
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("NUL-embedded key misordered against its extension")
	}
}
