package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed size of every heap page, chosen to match the
// common OS page size so FileBacking reads and writes are aligned.
const PageSize = 4096

// pageHeaderSize is the fixed page header:
//
//	0:4   crc32 (IEEE) over bytes [4:PageSize], computed at flush time
//	4:6   slotCount — entries in the slot directory, dead ones included
//	6:8   freeHigh — offset of the lowest tuple byte (data grows down)
//	8:10  liveCount — slots that currently hold a tuple
//	10:12 reserved (zero)
//
// The slot directory starts at pageHeaderSize and grows upward, four
// bytes per slot: u16 tuple offset, u16 tuple length. A dead slot is
// offset=0,length=0 (offset 0 is inside the header, so it can never
// address a live tuple).
const pageHeaderSize = 12

const slotSize = 4

// Page errors.
var (
	ErrPageFull     = errors.New("storage: page full")
	ErrBadChecksum  = errors.New("storage: page checksum mismatch (torn page)")
	ErrBadSlot      = errors.New("storage: no such slot")
	ErrTupleTooBig  = errors.New("storage: tuple larger than a page")
	ErrBadPageShape = errors.New("storage: malformed page header")
)

// maxTuple is the largest tuple a page can hold: one slot plus the data.
const maxTuple = PageSize - pageHeaderSize - slotSize

// page wraps a PageSize byte slice with the slotted-page operations. The
// slice is owned by a buffer-pool frame; page never allocates.
type page struct{ b []byte }

// initPage formats b as an empty page.
func initPage(b []byte) {
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint16(b[6:8], PageSize)
}

func (p page) slotCount() int { return int(binary.LittleEndian.Uint16(p.b[4:6])) }
func (p page) freeHigh() int  { return int(binary.LittleEndian.Uint16(p.b[6:8])) }
func (p page) liveCount() int { return int(binary.LittleEndian.Uint16(p.b[8:10])) }

func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.b[4:6], uint16(n)) }
func (p page) setFreeHigh(n int)  { binary.LittleEndian.PutUint16(p.b[6:8], uint16(n)) }
func (p page) setLiveCount(n int) { binary.LittleEndian.PutUint16(p.b[8:10], uint16(n)) }

// slot returns the offset/length pair of slot i.
func (p page) slot(i int) (off, ln int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.b[base : base+2])),
		int(binary.LittleEndian.Uint16(p.b[base+2 : base+4]))
}

func (p page) setSlot(i, off, ln int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.b[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.b[base+2:base+4], uint16(ln))
}

// freeSpace is the number of payload bytes an insert of a new tuple may
// use, accounting for the slot entry it would add.
func (p page) freeSpace() int {
	free := p.freeHigh() - (pageHeaderSize + p.slotCount()*slotSize)
	// A fresh tuple needs its slot entry too, unless a dead slot can be
	// reused; be conservative and always charge for one.
	free -= slotSize
	if free < 0 {
		return 0
	}
	return free
}

// insert places data in the page and returns its slot number. It reuses
// a dead slot when one exists, compacts the page when free space is
// sufficient but fragmented, and returns ErrPageFull otherwise.
func (p page) insert(data []byte) (int, error) {
	if len(data) > maxTuple {
		return 0, fmt.Errorf("%w (%d bytes)", ErrTupleTooBig, len(data))
	}
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, ln := p.slot(i); off == 0 && ln == 0 {
			slot = i
			break
		}
	}
	need := len(data)
	if slot < 0 {
		need += slotSize
	}
	low := pageHeaderSize + p.slotCount()*slotSize
	if p.freeHigh()-low < need {
		if p.contiguousAfterCompact(slot < 0) < len(data) {
			return 0, ErrPageFull
		}
		p.compact()
		low = pageHeaderSize + p.slotCount()*slotSize
		if p.freeHigh()-low < need {
			return 0, ErrPageFull
		}
	}
	off := p.freeHigh() - len(data)
	copy(p.b[off:], data)
	p.setFreeHigh(off)
	if slot < 0 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlot(slot, off, len(data))
	p.setLiveCount(p.liveCount() + 1)
	return slot, nil
}

// contiguousAfterCompact computes how many payload bytes a compaction
// would free up, optionally charging for one new slot entry.
func (p page) contiguousAfterCompact(newSlot bool) int {
	used := 0
	for i := 0; i < p.slotCount(); i++ {
		_, ln := p.slot(i)
		used += ln
	}
	low := pageHeaderSize + p.slotCount()*slotSize
	if newSlot {
		low += slotSize
	}
	return PageSize - low - used
}

// compact rewrites live tuples contiguously at the high end of the page,
// squeezing out holes left by deletes and relocated updates.
func (p page) compact() {
	var buf [PageSize]byte
	high := PageSize
	n := p.slotCount()
	type ent struct{ slot, off, ln int }
	for i := 0; i < n; i++ {
		off, ln := p.slot(i)
		if off == 0 && ln == 0 {
			continue
		}
		high -= ln
		copy(buf[high:], p.b[off:off+ln])
		p.setSlot(i, high, ln)
	}
	copy(p.b[high:], buf[high:])
	p.setFreeHigh(high)
}

// read returns the tuple bytes of a slot. The returned slice aliases the
// page buffer; callers must copy or decode before unpinning.
func (p page) read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, ErrBadSlot
	}
	off, ln := p.slot(slot)
	if off == 0 && ln == 0 {
		return nil, ErrBadSlot
	}
	return p.b[off : off+ln], nil
}

// delete removes a slot's tuple, leaving a dead slot entry for reuse.
func (p page) delete(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return ErrBadSlot
	}
	off, ln := p.slot(slot)
	if off == 0 && ln == 0 {
		return ErrBadSlot
	}
	p.setSlot(slot, 0, 0)
	p.setLiveCount(p.liveCount() - 1)
	if off == p.freeHigh() {
		// Cheap partial reclaim: the deleted tuple was the lowest one.
		p.setFreeHigh(off + ln)
	}
	return nil
}

// update replaces a slot's tuple in place when the new data fits the old
// footprint, or via delete+insert inside the same page when there is
// room. It returns ErrPageFull when the page cannot hold the new tuple;
// the heap file then relocates to another page.
func (p page) update(slot int, data []byte) error {
	if slot < 0 || slot >= p.slotCount() {
		return ErrBadSlot
	}
	off, ln := p.slot(slot)
	if off == 0 && ln == 0 {
		return ErrBadSlot
	}
	if len(data) <= ln {
		copy(p.b[off:], data)
		p.setSlot(slot, off, len(data))
		return nil
	}
	// Delete then re-insert into the same slot if the page has room.
	if p.contiguousAfterCompact(false)+ln < len(data) {
		return ErrPageFull
	}
	p.setSlot(slot, 0, 0)
	if off == p.freeHigh() {
		p.setFreeHigh(off + ln)
	}
	low := pageHeaderSize + p.slotCount()*slotSize
	if p.freeHigh()-low < len(data) {
		p.compact()
	}
	noff := p.freeHigh() - len(data)
	copy(p.b[noff:], data)
	p.setFreeHigh(noff)
	p.setSlot(slot, noff, len(data))
	return nil
}

// checksum computes the page CRC over everything after the CRC field.
func checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b[4:]) }

// sealPage stamps the CRC; called by the pool immediately before a page
// is written to its backing.
func sealPage(b []byte) { binary.LittleEndian.PutUint32(b[0:4], checksum(b)) }

// verifyPage checks the CRC and the header's structural invariants;
// pages read from a backing pass through it before use. An all-zero
// page (allocated but never flushed) is rejected as torn unless it is
// exactly the zero value, which cannot occur for a sealed page because
// initPage sets freeHigh.
func verifyPage(b []byte) error {
	if len(b) != PageSize {
		return ErrBadPageShape
	}
	if binary.LittleEndian.Uint32(b[0:4]) != checksum(b) {
		return ErrBadChecksum
	}
	p := page{b}
	if p.freeHigh() > PageSize || p.freeHigh() < pageHeaderSize ||
		pageHeaderSize+p.slotCount()*slotSize > p.freeHigh() ||
		p.liveCount() > p.slotCount() {
		return ErrBadPageShape
	}
	for i := 0; i < p.slotCount(); i++ {
		off, ln := p.slot(i)
		if off == 0 && ln == 0 {
			continue
		}
		if off < pageHeaderSize+p.slotCount()*slotSize || off+ln > PageSize {
			return ErrBadPageShape
		}
	}
	return nil
}
