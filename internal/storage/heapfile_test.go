package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestHeapFileCRUDAndScan(t *testing.T) {
	pool := NewPool(16)
	h := NewHeapFile(pool, NewMemBacking())
	want := make(map[RID][]byte)
	for i := 0; i < 2000; i++ {
		data := []byte(fmt.Sprintf("row-%04d-%s", i, bytes.Repeat([]byte{'x'}, i%200)))
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		want[rid] = data
	}
	if h.NumPages() < 2 {
		t.Fatalf("2000 rows fit in %d page(s); expected a multi-page heap", h.NumPages())
	}
	for rid, data := range want {
		got, err := h.Read(rid)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read %s: %v", rid, err)
		}
	}
	// Scan sees exactly the live set.
	seen := 0
	err := h.Scan(func(rid RID, data []byte) bool {
		w, ok := want[rid]
		if !ok || !bytes.Equal(data, w) {
			t.Fatalf("scan surfaced unexpected tuple at %s", rid)
		}
		seen++
		return true
	})
	if err != nil || seen != len(want) {
		t.Fatalf("scan: err=%v seen=%d want=%d", err, seen, len(want))
	}
	// Delete half, update a quarter (growing them to force relocations).
	i := 0
	for rid := range want {
		switch i % 4 {
		case 0, 1:
			if err := h.Delete(rid); err != nil {
				t.Fatalf("delete %s: %v", rid, err)
			}
			delete(want, rid)
		case 2:
			grown := append(bytes.Repeat([]byte{'G'}, 700), want[rid]...)
			nrid, err := h.Update(rid, grown)
			if err != nil {
				t.Fatalf("update %s: %v", rid, err)
			}
			delete(want, rid)
			want[nrid] = grown
		}
		i++
	}
	for rid, data := range want {
		got, err := h.Read(rid)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("post-churn read %s: %v", rid, err)
		}
	}
	seen = 0
	h.Scan(func(rid RID, data []byte) bool { seen++; return true })
	if seen != len(want) {
		t.Fatalf("post-churn scan: seen=%d want=%d", seen, len(want))
	}
}

func TestHeapFileInsertReusesFreedSpace(t *testing.T) {
	pool := NewPool(32)
	h := NewHeapFile(pool, NewMemBacking())
	var rids []RID
	data := bytes.Repeat([]byte{'d'}, 200)
	for i := 0; i < 1000; i++ {
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	before := h.NumPages()
	// Drain the first half of the heap, then refill: the open list should
	// route new tuples into the drained pages instead of growing the file.
	for _, rid := range rids[:500] {
		if err := h.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		if _, err := h.Insert(data); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() > before {
		t.Fatalf("heap grew from %d to %d pages despite 500 freed tuples", before, h.NumPages())
	}
}

func TestHeapFilePersistReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.heap")
	fb, err := OpenFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(16)
	h := NewHeapFile(pool, fb)
	want := make(map[RID][]byte)
	for i := 0; i < 500; i++ {
		data := []byte(fmt.Sprintf("persistent-%d", i))
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		want[rid] = data
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := OpenFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	h2, repaired, err := OpenHeapFile(NewPool(16), fb2, OpenOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if repaired != 0 {
		t.Fatalf("clean file reported %d repaired pages", repaired)
	}
	for rid, data := range want {
		got, err := h2.Read(rid)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("reopened read %s: %v", rid, err)
		}
	}
	// Inserts after reopen work (the free-space map was rebuilt).
	if _, err := h2.Insert([]byte("post-reopen")); err != nil {
		t.Fatalf("insert after reopen: %v", err)
	}
	h2.Close()
	fb2.Close()
}

func TestHeapFileTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.heap")
	fb, err := OpenFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(16)
	h := NewHeapFile(pool, fb)
	var rid0 RID
	for i := 0; i < 300; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{'t'}, 100))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			rid0 = rid
		}
	}
	h.Close()
	fb.Close()

	// Tear the tail: chop half a page off, as a crash mid-append would.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-PageSize/2); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenFileBacking(path); !errors.Is(err, ErrTruncatedFile) {
		t.Fatalf("open of truncated file: err = %v, want ErrTruncatedFile", err)
	}
	fb2, repaired, err := RepairFileBacking(path)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !repaired {
		t.Fatalf("repair did not report dropping the torn tail")
	}
	h2, _, err := OpenHeapFile(NewPool(16), fb2, OpenOptions{Repair: true})
	if err != nil {
		t.Fatalf("open repaired: %v", err)
	}
	// Data on the surviving pages is intact.
	if got, err := h2.Read(rid0); err != nil || len(got) != 100 {
		t.Fatalf("surviving tuple: %v", err)
	}
	h2.Close()
	fb2.Close()
}

func TestHeapFileTornPageRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.heap")
	fb, err := OpenFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeapFile(NewPool(16), fb)
	for i := 0; i < 300; i++ {
		if _, err := h.Insert(bytes.Repeat([]byte{'p'}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	npages := h.NumPages()
	if npages < 3 {
		t.Fatalf("want >=3 pages, got %d", npages)
	}
	h.Close()
	fb.Close()

	// Corrupt the middle page in place: a torn in-place overwrite.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tornPage := int64(npages / 2)
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xDE}, 64), tornPage*PageSize+64); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Without Repair the open fails loudly.
	fb2, err := OpenFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenHeapFile(NewPool(16), fb2, OpenOptions{}); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("open with torn page: err = %v, want ErrBadChecksum", err)
	}
	fb2.Close()

	// With Repair the torn page is reinitialized and the rest survives.
	fb3, err := OpenFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	h3, repaired, err := OpenHeapFile(NewPool(16), fb3, OpenOptions{Repair: true})
	if err != nil {
		t.Fatalf("repair open: %v", err)
	}
	if repaired != 1 {
		t.Fatalf("repaired = %d, want 1", repaired)
	}
	live := 0
	h3.Scan(func(rid RID, data []byte) bool {
		if rid.Page == uint32(tornPage) {
			t.Fatalf("repaired page still surfaced tuples")
		}
		live++
		return true
	})
	if live == 0 || live >= 300 {
		t.Fatalf("live tuples after repair = %d; want some lost, most kept", live)
	}
	h3.Close()
	fb3.Close()
}
