package storage

import "sync/atomic"

// PageCounters accumulates buffer-pool traffic attributable to one
// consumer — typically one statement's operator in an EXPLAIN ANALYZE
// tree. The global msql_storage_pool_* counters keep aggregating across
// the process; a PageCounters threaded through a fetch records the same
// events for just that caller, so concurrent statements sharing a table
// (and its pool) never bleed into each other's counts.
//
// Fields are atomics because a statement's operators may read from
// multiple goroutines (parallel DOL tasks over local services share a
// process-wide pool). The zero value is ready to use; a nil *PageCounters
// is accepted everywhere and counts nothing.
type PageCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

func (c *PageCounters) hit() {
	if c != nil {
		c.hits.Add(1)
	}
}

func (c *PageCounters) miss() {
	if c != nil {
		c.misses.Add(1)
	}
}

// Hits returns pages served from a resident frame.
func (c *PageCounters) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns pages that had to read the backing store.
func (c *PageCounters) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Reset zeroes both counters.
func (c *PageCounters) Reset() {
	if c == nil {
		return
	}
	c.hits.Store(0)
	c.misses.Store(0)
}
