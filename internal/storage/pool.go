package storage

import (
	"errors"
	"fmt"
	"sync"

	"msql/internal/obs"
)

// Buffer-pool metrics, aggregated across every pool in the process and
// exported on /metrics by -debug-addr.
var (
	mPoolHits = obs.Default().Counter("msql_storage_pool_hits_total",
		"page requests served from a resident buffer-pool frame")
	mPoolMisses = obs.Default().Counter("msql_storage_pool_misses_total",
		"page requests that had to read the backing store")
	mPoolEvictions = obs.Default().Counter("msql_storage_pool_evictions_total",
		"resident pages evicted by the clock hand to make room")
	mPoolFlushes = obs.Default().Counter("msql_storage_pool_flushes_total",
		"dirty pages written back to the backing store")
)

// ErrPoolFull reports that every frame is pinned: there is nothing the
// clock hand may evict. It means the pool is smaller than the working
// set of simultaneously pinned pages, which the executor bounds to a
// handful per open iterator.
var ErrPoolFull = errors.New("storage: buffer pool exhausted (all frames pinned)")

// FileID names a Backing registered with a Pool.
type FileID uint32

type frameKey struct {
	file FileID
	page uint32
}

// Frame is one resident page. A Frame returned by Fetch or Alloc is
// pinned: it cannot be evicted until Unpin. Data aliases the pool's
// buffer — do not retain it past Unpin.
type Frame struct {
	key   frameKey
	buf   []byte
	pins  int
	dirty bool
	ref   bool
	used  bool
}

// Data returns the page bytes.
func (f *Frame) Data() []byte { return f.buf }

// PoolStats is a point-in-time snapshot of one pool's counters.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Flushes   int64
	Pages     int // configured frame count
	Resident  int // frames currently holding a page
	Pinned    int // frames currently pinned
}

// Pool is a fixed-size buffer pool shared by the heap files of one
// store. All page I/O goes through it; eviction uses the clock (second
// chance) algorithm over unpinned frames, writing dirty victims back to
// their backing first.
type Pool struct {
	mu       sync.Mutex
	frames   []Frame
	index    map[frameKey]int
	hand     int
	backings map[FileID]Backing
	nextFile FileID
	stats    PoolStats
}

// DefaultPoolPages is the pool size used when a store does not specify
// one: 4096 frames × 4 KiB = 16 MiB, comfortably larger than the demo
// working sets so purely in-memory federations never evict.
const DefaultPoolPages = 4096

// NewPool creates a pool with npages frames (minimum 8).
func NewPool(npages int) *Pool {
	if npages < 8 {
		npages = 8
	}
	p := &Pool{
		frames:   make([]Frame, npages),
		index:    make(map[frameKey]int),
		backings: make(map[FileID]Backing),
	}
	p.stats.Pages = npages
	for i := range p.frames {
		p.frames[i].buf = make([]byte, PageSize)
	}
	return p
}

// Register attaches a backing and returns its id for Fetch/Alloc calls.
func (p *Pool) Register(b Backing) FileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextFile
	p.nextFile++
	p.backings[id] = b
	return id
}

// Deregister discards a file's resident frames without flushing (the
// table was dropped) and detaches the backing.
func (p *Pool) Deregister(id FileID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.used && f.key.file == id {
			delete(p.index, f.key)
			f.used, f.dirty, f.ref, f.pins = false, false, false, 0
			p.stats.Resident--
		}
	}
	delete(p.backings, id)
}

// Fetch pins and returns the frame holding the page, reading it from
// the backing on a miss. Pages read from a backing are CRC-verified.
func (p *Pool) Fetch(file FileID, pageNo uint32) (*Frame, error) {
	return p.FetchCounted(file, pageNo, nil)
}

// FetchCounted is Fetch with the hit/miss additionally recorded on pc
// (nil-safe), attributing the pool traffic to one statement's operator.
func (p *Pool) FetchCounted(file FileID, pageNo uint32, pc *PageCounters) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.index[frameKey{file, pageNo}]; ok {
		f := &p.frames[i]
		f.pins++
		f.ref = true
		p.stats.Hits++
		mPoolHits.Inc()
		pc.hit()
		return f, nil
	}
	p.stats.Misses++
	mPoolMisses.Inc()
	pc.miss()
	b, ok := p.backings[file]
	if !ok {
		return nil, fmt.Errorf("storage: fetch from unregistered file %d", file)
	}
	fi, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[fi]
	if err := b.ReadPage(pageNo, f.buf); err != nil {
		p.releaseVictimLocked(f)
		return nil, err
	}
	if err := verifyPage(f.buf); err != nil {
		p.releaseVictimLocked(f)
		return nil, fmt.Errorf("%w (file %d page %d)", err, file, pageNo)
	}
	p.installLocked(fi, frameKey{file, pageNo})
	return f, nil
}

// Alloc extends the file by one page and returns it pinned, initialized
// and dirty.
func (p *Pool) Alloc(file FileID) (uint32, *Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.backings[file]
	if !ok {
		return 0, nil, fmt.Errorf("storage: alloc on unregistered file %d", file)
	}
	fi, err := p.victimLocked()
	if err != nil {
		return 0, nil, err
	}
	f := &p.frames[fi]
	pageNo, err := b.Allocate()
	if err != nil {
		p.releaseVictimLocked(f)
		return 0, nil, err
	}
	initPage(f.buf)
	p.installLocked(fi, frameKey{file, pageNo})
	f.dirty = true
	return pageNo, f, nil
}

// Unpin releases a pin; dirty records that the caller modified the page.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins > 0 {
		f.pins--
	}
	if dirty {
		f.dirty = true
	}
	f.ref = true
}

// victimLocked finds a free or evictable frame and returns its index,
// detached from the pool's page index. Dirty victims are flushed.
func (p *Pool) victimLocked() (int, error) {
	// One full revolution may only clear reference bits; a second finds
	// any unpinned frame. Beyond two, everything is pinned.
	for pass := 0; pass < 2*len(p.frames); pass++ {
		i := p.hand
		f := &p.frames[i]
		p.hand = (p.hand + 1) % len(p.frames)
		if !f.used {
			f.used = true
			p.stats.Resident++
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := p.flushFrameLocked(f); err != nil {
				return 0, err
			}
		}
		delete(p.index, f.key)
		p.stats.Evictions++
		mPoolEvictions.Inc()
		return i, nil
	}
	return 0, ErrPoolFull
}

// releaseVictimLocked returns a victim frame acquired by victimLocked to
// the free state after a failed fill.
func (p *Pool) releaseVictimLocked(f *Frame) {
	f.used, f.dirty, f.ref, f.pins = false, false, false, 0
	p.stats.Resident--
}

// installLocked binds a filled victim frame to its key.
func (p *Pool) installLocked(fi int, k frameKey) {
	f := &p.frames[fi]
	f.key = k
	f.pins = 1
	f.ref = true
	f.dirty = false
	p.index[k] = fi
}

// flushFrameLocked seals and writes one dirty frame back.
func (p *Pool) flushFrameLocked(f *Frame) error {
	b, ok := p.backings[f.key.file]
	if !ok {
		return fmt.Errorf("storage: flush to unregistered file %d", f.key.file)
	}
	sealPage(f.buf)
	if err := b.WritePage(f.key.page, f.buf); err != nil {
		return err
	}
	f.dirty = false
	p.stats.Flushes++
	mPoolFlushes.Inc()
	return nil
}

// FlushFile writes back every dirty resident page of one file.
func (p *Pool) FlushFile(file FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.used && f.dirty && f.key.file == file {
			if err := p.flushFrameLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlushAll writes back every dirty resident page.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.used && f.dirty {
			if err := p.flushFrameLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Pinned = 0
	for i := range p.frames {
		if p.frames[i].used && p.frames[i].pins > 0 {
			s.Pinned++
		}
	}
	return s
}
