package storage

import (
	"bytes"
	"fmt"
)

// btreeOrder is the maximum number of keys per node. Nodes split at
// btreeOrder+1 keys and merge or borrow below btreeOrder/2.
const btreeOrder = 64

// BTree maps order-preserving encoded keys (see EncodeKey) to int64
// positions — relstore stores a table's stable row index there. Keys are
// unique: Insert on an existing key replaces the value and reports it.
//
// The tree is an in-memory index rebuilt from the heap on open, so it
// needs no page format; split and merge keep lookups O(log n) under any
// insert/delete mix. It is not safe for concurrent use — the table lock
// that guards the heap guards its index too.
type BTree struct {
	root *bnode
	size int
}

// bnode is one node. Leaves hold vals parallel to keys and a next
// pointer for in-order scans; interior nodes hold len(keys)+1 children,
// where keys[i] is the smallest key reachable under kids[i+1].
type bnode struct {
	leaf bool
	keys [][]byte
	vals []int64  // leaves only
	kids []*bnode // interior only
	next *bnode   // leaves only
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &bnode{leaf: true}}
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// search returns the index of the first key >= k in n.keys.
func search(n *bnode, k []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an interior node covers k.
func childIndex(n *bnode, k []byte) int {
	i := search(n, k)
	if i < len(n.keys) && bytes.Compare(n.keys[i], k) == 0 {
		return i + 1
	}
	return i
}

// Get returns the value stored under key.
func (t *BTree) Get(key []byte) (int64, bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[childIndex(n, key)]
	}
	i := search(n, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores value under key, replacing any existing entry; replaced
// reports whether one existed.
func (t *BTree) Insert(key []byte, value int64) (replaced bool) {
	k := append([]byte(nil), key...)
	replaced = t.insert(t.root, k, value)
	if !replaced {
		t.size++
	}
	if len(t.root.keys) > btreeOrder {
		old := t.root
		midKey, right := split(old)
		t.root = &bnode{
			keys: [][]byte{midKey},
			kids: []*bnode{old, right},
		}
	}
	return replaced
}

func (t *BTree) insert(n *bnode, key []byte, value int64) bool {
	if n.leaf {
		i := search(n, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = value
			return true
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = value
		return false
	}
	ci := childIndex(n, key)
	replaced := t.insert(n.kids[ci], key, value)
	if len(n.kids[ci].keys) > btreeOrder {
		midKey, right := split(n.kids[ci])
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = midKey
		n.kids = append(n.kids, nil)
		copy(n.kids[ci+2:], n.kids[ci+1:])
		n.kids[ci+1] = right
	}
	return replaced
}

// split divides an overfull node in two, returning the separator key and
// the new right sibling.
func split(n *bnode) ([]byte, *bnode) {
	mid := len(n.keys) / 2
	if n.leaf {
		right := &bnode{
			leaf: true,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([]int64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = right
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right := &bnode{
		keys: append([][]byte(nil), n.keys[mid+1:]...),
		kids: append([]*bnode(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.kids = n.kids[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key, rebalancing by borrow or merge on underflow. It
// reports whether the key existed.
func (t *BTree) Delete(key []byte) bool {
	deleted := t.delete(t.root, key)
	if deleted {
		t.size--
	}
	if !t.root.leaf && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
	}
	return deleted
}

const minKeys = btreeOrder / 2

func (t *BTree) delete(n *bnode, key []byte) bool {
	if n.leaf {
		i := search(n, key)
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	ci := childIndex(n, key)
	deleted := t.delete(n.kids[ci], key)
	if len(n.kids[ci].keys) < minKeys {
		t.rebalance(n, ci)
	}
	return deleted
}

// rebalance fixes an underfull child ci of n by borrowing from a rich
// sibling or merging with a poor one.
func (t *BTree) rebalance(n *bnode, ci int) {
	child := n.kids[ci]
	// Borrow from the left sibling.
	if ci > 0 && len(n.kids[ci-1].keys) > minKeys {
		left := n.kids[ci-1]
		if child.leaf {
			last := len(left.keys) - 1
			child.keys = append([][]byte{left.keys[last]}, child.keys...)
			child.vals = append([]int64{left.vals[last]}, child.vals...)
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			n.keys[ci-1] = child.keys[0]
		} else {
			last := len(left.keys) - 1
			child.keys = append([][]byte{n.keys[ci-1]}, child.keys...)
			child.kids = append([]*bnode{left.kids[last+1]}, child.kids...)
			n.keys[ci-1] = left.keys[last]
			left.keys = left.keys[:last]
			left.kids = left.kids[:last+1]
		}
		return
	}
	// Borrow from the right sibling.
	if ci < len(n.kids)-1 && len(n.kids[ci+1].keys) > minKeys {
		right := n.kids[ci+1]
		if child.leaf {
			child.keys = append(child.keys, right.keys[0])
			child.vals = append(child.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			n.keys[ci] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[ci])
			child.kids = append(child.kids, right.kids[0])
			n.keys[ci] = right.keys[0]
			right.keys = right.keys[1:]
			right.kids = right.kids[1:]
		}
		return
	}
	// Merge with a sibling. Merge child into left, or right into child.
	li := ci - 1
	if li < 0 {
		li = ci
	}
	left, right := n.kids[li], n.kids[li+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[li])
		left.keys = append(left.keys, right.keys...)
		left.kids = append(left.kids, right.kids...)
	}
	n.keys = append(n.keys[:li], n.keys[li+1:]...)
	n.kids = append(n.kids[:li+1], n.kids[li+2:]...)
}

// Ascend calls fn for every key in order, starting at the first key
// >= from (nil means the smallest). fn returning false stops the scan.
func (t *BTree) Ascend(from []byte, fn func(key []byte, value int64) bool) {
	n := t.root
	for !n.leaf {
		if from == nil {
			n = n.kids[0]
		} else {
			n = n.kids[childIndex(n, from)]
		}
	}
	i := 0
	if from != nil {
		i = search(n, from)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// CheckInvariants walks the tree verifying ordering, fill factors, leaf
// depth uniformity and the leaf chain; tests call it after every
// mutation in the property suite.
func (t *BTree) CheckInvariants() error {
	depth := -1
	var prevLeaf *bnode
	count := 0
	var walk func(n *bnode, d int, lo, hi []byte) error
	walk = func(n *bnode, d int, lo, hi []byte) error {
		for i := 0; i < len(n.keys); i++ {
			if i > 0 && bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("btree: keys out of order at depth %d", d)
			}
			if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
				return fmt.Errorf("btree: key below subtree bound")
			}
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return fmt.Errorf("btree: key above subtree bound")
			}
		}
		if n != t.root && len(n.keys) < minKeys {
			return fmt.Errorf("btree: underfull node (%d keys) at depth %d", len(n.keys), d)
		}
		if len(n.keys) > btreeOrder {
			return fmt.Errorf("btree: overfull node (%d keys)", len(n.keys))
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("btree: leaf vals/keys mismatch")
			}
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			if prevLeaf != nil && prevLeaf.next != n {
				return fmt.Errorf("btree: broken leaf chain")
			}
			prevLeaf = n
			count += len(n.keys)
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("btree: interior kids/keys mismatch")
		}
		for i, kid := range n.kids {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(kid, d+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, nil, nil); err != nil {
		return err
	}
	if prevLeaf != nil && prevLeaf.next != nil {
		return fmt.Errorf("btree: leaf chain extends past last leaf")
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys found", t.size, count)
	}
	return nil
}
