package storage

import (
	"errors"
	"testing"
)

// newPoolFile returns a small pool with one registered MemBacking that
// already holds npages sealed empty pages.
func newPoolFile(t *testing.T, frames int, npages int) (*Pool, FileID, *MemBacking) {
	t.Helper()
	pool := NewPool(frames)
	b := NewMemBacking()
	id := pool.Register(b)
	var buf [PageSize]byte
	for i := 0; i < npages; i++ {
		if _, err := b.Allocate(); err != nil {
			t.Fatal(err)
		}
		initPage(buf[:])
		sealPage(buf[:])
		if err := b.WritePage(uint32(i), buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	return pool, id, b
}

func TestPoolHitMiss(t *testing.T) {
	pool, id, _ := newPoolFile(t, 8, 4)
	f, err := pool.Fetch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, false)
	f, err = pool.Fetch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, false)
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	// Pool smaller than the file: touching every page forces eviction.
	pool, id, backing := newPoolFile(t, 8, 32)
	for pg := uint32(0); pg < 32; pg++ {
		f, err := pool.Fetch(id, pg)
		if err != nil {
			t.Fatalf("fetch %d: %v", pg, err)
		}
		p := page{f.Data()}
		if _, err := p.insert([]byte{byte(pg), byte(pg), byte(pg)}); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f, true)
	}
	s := pool.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions with 8 frames over 32 pages")
	}
	if s.Flushes == 0 {
		t.Fatalf("dirty victims were not flushed")
	}
	// Every page's mutation survived its round trip through the backing.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var buf [PageSize]byte
	for pg := uint32(0); pg < 32; pg++ {
		if err := backing.ReadPage(pg, buf[:]); err != nil {
			t.Fatal(err)
		}
		if err := verifyPage(buf[:]); err != nil {
			t.Fatalf("page %d failed verify after write-back: %v", pg, err)
		}
		data, err := page{buf[:]}.read(0)
		if err != nil || data[0] != byte(pg) {
			t.Fatalf("page %d lost its tuple: %v %v", pg, data, err)
		}
	}
}

func TestPoolPinnedPagesNeverEvicted(t *testing.T) {
	pool, id, _ := newPoolFile(t, 8, 64)
	// Pin page 0, then stream the rest through the remaining frames.
	pinned, err := pool.Fetch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := page{pinned.Data()}
	if _, err := p.insert([]byte("pinned sentinel")); err != nil {
		t.Fatal(err)
	}
	for pg := uint32(1); pg < 64; pg++ {
		f, err := pool.Fetch(id, pg)
		if err != nil {
			t.Fatalf("fetch %d: %v", pg, err)
		}
		pool.Unpin(f, false)
	}
	// The pinned frame must still hold page 0's bytes.
	data, err := page{pinned.Data()}.read(0)
	if err != nil || string(data) != "pinned sentinel" {
		t.Fatalf("pinned frame was recycled: %v %q", err, data)
	}
	pool.Unpin(pinned, true)
}

func TestPoolAllPinnedErrPoolFull(t *testing.T) {
	pool, id, _ := newPoolFile(t, 8, 16)
	var held []*Frame
	for pg := uint32(0); pg < 8; pg++ {
		f, err := pool.Fetch(id, pg)
		if err != nil {
			t.Fatalf("fetch %d: %v", pg, err)
		}
		held = append(held, f)
	}
	if _, err := pool.Fetch(id, 8); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("fetch with all frames pinned: err = %v, want ErrPoolFull", err)
	}
	if _, _, err := pool.Alloc(id); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("alloc with all frames pinned: err = %v, want ErrPoolFull", err)
	}
	// Releasing one pin unblocks the fetch.
	pool.Unpin(held[0], false)
	f, err := pool.Fetch(id, 8)
	if err != nil {
		t.Fatalf("fetch after unpin: %v", err)
	}
	pool.Unpin(f, false)
	for _, f := range held[1:] {
		pool.Unpin(f, false)
	}
}

func TestPoolCorruptPageRejectedOnFetch(t *testing.T) {
	pool, id, backing := newPoolFile(t, 8, 2)
	var buf [PageSize]byte
	if err := backing.ReadPage(1, buf[:]); err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xFF // payload damage without resealing
	if err := backing.WritePage(1, buf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(id, 1); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("fetch of torn page: err = %v, want ErrBadChecksum", err)
	}
	// The failed fill released its frame; the pool still works.
	f, err := pool.Fetch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, false)
}
