package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"msql/internal/sqlval"
)

// ErrBadTuple reports a tuple that cannot be decoded (corruption that a
// page CRC cannot catch, e.g. a software bug writing short rows).
var ErrBadTuple = errors.New("storage: malformed tuple")

// Tuple value tags. The codec is self-describing so a heap file can be
// decoded knowing only that it holds rows of sqlval values; schema
// checking stays in relstore.
const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagString
	tagBoolFalse
	tagBoolTrue
)

// EncodeRow appends the compact encoding of a row of values to dst and
// returns the extended slice: a uvarint column count, then one tagged
// value per column (varint for ints, 8 fixed bytes for floats, uvarint
// length + bytes for strings).
func EncodeRow(dst []byte, row []sqlval.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		switch v.K {
		case sqlval.KindNull:
			dst = append(dst, tagNull)
		case sqlval.KindInt:
			dst = append(dst, tagInt)
			dst = binary.AppendVarint(dst, v.I)
		case sqlval.KindFloat:
			dst = append(dst, tagFloat)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case sqlval.KindString:
			dst = append(dst, tagString)
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case sqlval.KindBool:
			if v.B {
				dst = append(dst, tagBoolTrue)
			} else {
				dst = append(dst, tagBoolFalse)
			}
		default:
			// Unknown kinds cannot reach storage: relstore validates rows
			// against the schema first. Store NULL to stay decodable.
			dst = append(dst, tagNull)
		}
	}
	return dst
}

// DecodeRow decodes a tuple previously written by EncodeRow.
func DecodeRow(b []byte) ([]sqlval.Value, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)) {
		return nil, ErrBadTuple
	}
	b = b[sz:]
	row := make([]sqlval.Value, n)
	for i := range row {
		if len(b) == 0 {
			return nil, ErrBadTuple
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case tagNull:
			row[i] = sqlval.Null()
		case tagInt:
			v, sz := binary.Varint(b)
			if sz <= 0 {
				return nil, ErrBadTuple
			}
			b = b[sz:]
			row[i] = sqlval.Int(v)
		case tagFloat:
			if len(b) < 8 {
				return nil, ErrBadTuple
			}
			row[i] = sqlval.Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case tagString:
			ln, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < ln {
				return nil, ErrBadTuple
			}
			b = b[sz:]
			row[i] = sqlval.Str(string(b[:ln]))
			b = b[ln:]
		case tagBoolFalse:
			row[i] = sqlval.Bool(false)
		case tagBoolTrue:
			row[i] = sqlval.Bool(true)
		default:
			return nil, fmt.Errorf("%w: tag %d", ErrBadTuple, tag)
		}
	}
	return row, nil
}

// EncodeKey encodes a composite key so that bytes.Compare on encodings
// orders the same way SQL orders the values: NULL first, then by value
// within a kind. Each component is a kind byte followed by an
// order-preserving payload:
//
//	int    — 8 bytes big-endian of the value with the sign bit flipped
//	float  — IEEE bits, negated for negatives, sign bit set for
//	         non-negatives (the standard total-order transform)
//	string — the bytes with 0x00 escaped as 0x00 0xFF, terminated by
//	         0x00 0x00, so no key is a prefix of another
//	bool   — one byte, FALSE < TRUE
//
// Key columns hold one kind per column (relstore normalizes on insert),
// so cross-kind ordering only decides NULL placement in practice.
func EncodeKey(dst []byte, vals []sqlval.Value) []byte {
	for _, v := range vals {
		switch v.K {
		case sqlval.KindNull:
			dst = append(dst, 0x00)
		case sqlval.KindBool:
			if v.B {
				dst = append(dst, 0x01, 1)
			} else {
				dst = append(dst, 0x01, 0)
			}
		case sqlval.KindInt:
			dst = append(dst, 0x02)
			dst = binary.BigEndian.AppendUint64(dst, uint64(v.I)^(1<<63))
		case sqlval.KindFloat:
			bits := math.Float64bits(v.F)
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			dst = append(dst, 0x03)
			dst = binary.BigEndian.AppendUint64(dst, bits)
		case sqlval.KindString:
			dst = append(dst, 0x04)
			for i := 0; i < len(v.S); i++ {
				if v.S[i] == 0x00 {
					dst = append(dst, 0x00, 0xFF)
				} else {
					dst = append(dst, v.S[i])
				}
			}
			dst = append(dst, 0x00, 0x00)
		}
	}
	return dst
}
