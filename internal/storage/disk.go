package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// Backing is where a heap file's pages live when they are not in the
// buffer pool: a real file under -data-dir, or an in-memory stand-in.
// Page numbers are dense, 0..NumPages-1; Allocate extends by one page.
// Implementations must be safe for concurrent use — the pool serializes
// per-frame operations but distinct frames flush concurrently.
type Backing interface {
	ReadPage(page uint32, buf []byte) error
	WritePage(page uint32, buf []byte) error
	NumPages() (uint32, error)
	Allocate() (uint32, error)
	Sync() error
	Close() error
}

// ErrTruncatedFile reports a heap file whose size is not a whole number
// of pages — the tail page was torn by a crash mid-write.
var ErrTruncatedFile = errors.New("storage: heap file size is not page-aligned (truncated tail)")

// MemBacking simulates a disk with a slice of pages. It is the default
// backing: eviction and checkpointing exercise the same code paths as a
// real file, the bytes just stay in RAM.
type MemBacking struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemBacking returns an empty in-memory backing.
func NewMemBacking() *MemBacking { return &MemBacking{} }

// ReadPage copies the page into buf.
func (m *MemBacking) ReadPage(page uint32, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(page) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", page)
	}
	copy(buf, m.pages[page])
	return nil
}

// WritePage copies buf over the page.
func (m *MemBacking) WritePage(page uint32, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(page) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", page)
	}
	copy(m.pages[page], buf)
	return nil
}

// NumPages returns the allocated page count.
func (m *MemBacking) NumPages() (uint32, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint32(len(m.pages)), nil
}

// Allocate extends the backing by one zero page.
func (m *MemBacking) Allocate() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return uint32(len(m.pages) - 1), nil
}

// Sync is a no-op for memory.
func (m *MemBacking) Sync() error { return nil }

// Close releases the pages.
func (m *MemBacking) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = nil
	return nil
}

// FileBacking stores pages in a regular file, one PageSize block per
// page, read and written with positional I/O.
type FileBacking struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32
}

// OpenFileBacking opens or creates the heap file at path. A file whose
// size is not a multiple of PageSize is refused with ErrTruncatedFile;
// the caller decides whether to repair (drop the torn tail) or fail.
func OpenFileBacking(path string) (*FileBacking, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrTruncatedFile, path, st.Size())
	}
	return &FileBacking{f: f, pages: uint32(st.Size() / PageSize)}, nil
}

// RepairFileBacking opens the heap file at path, truncating a torn tail
// page if present. Used when reopening after a crash: a torn tail can
// only be an allocation that no checkpoint ever referenced.
func RepairFileBacking(path string) (*FileBacking, bool, error) {
	fb, err := OpenFileBacking(path)
	if err == nil {
		return fb, false, nil
	}
	if !errors.Is(err, ErrTruncatedFile) {
		return nil, false, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, false, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false, err
	}
	whole := st.Size() / PageSize
	if err := f.Truncate(whole * PageSize); err != nil {
		f.Close()
		return nil, false, err
	}
	return &FileBacking{f: f, pages: uint32(whole)}, true, nil
}

// ReadPage reads the page into buf.
func (fb *FileBacking) ReadPage(page uint32, buf []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if page >= fb.pages {
		return fmt.Errorf("storage: read of unallocated page %d", page)
	}
	_, err := fb.f.ReadAt(buf[:PageSize], int64(page)*PageSize)
	return err
}

// WritePage writes buf at the page's offset.
func (fb *FileBacking) WritePage(page uint32, buf []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if page >= fb.pages {
		return fmt.Errorf("storage: write of unallocated page %d", page)
	}
	_, err := fb.f.WriteAt(buf[:PageSize], int64(page)*PageSize)
	return err
}

// NumPages returns the allocated page count.
func (fb *FileBacking) NumPages() (uint32, error) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.pages, nil
}

// Allocate extends the file by one zero page.
func (fb *FileBacking) Allocate() (uint32, error) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	var zero [PageSize]byte
	if _, err := fb.f.WriteAt(zero[:], int64(fb.pages)*PageSize); err != nil {
		return 0, err
	}
	fb.pages++
	return fb.pages - 1, nil
}

// Sync fsyncs the file.
func (fb *FileBacking) Sync() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.f.Sync()
}

// Close closes the file.
func (fb *FileBacking) Close() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.f.Close()
}
