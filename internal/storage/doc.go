// Package storage is the disk-format layer of the simulated local DBMSs:
// fixed-size slotted heap pages, a pin-counted buffer pool with clock
// eviction, heap files with a free-space map, order-preserving key
// encoding, and an in-memory B-tree index. relstore re-homes its tables
// on this package; nothing above relstore — the SQL engine, the LDBMS
// session layer, the LAMs, or the federation tiers — sees any of it.
//
// The layering mirrors a conventional single-site DBMS:
//
//	HeapFile   — a table's pages; Insert/Read/Update/Delete by RID,
//	             page-at-a-time Scan, and a free-space map for O(1)
//	             placement of new tuples.
//	Pool       — the buffer pool. Every page read or write goes through
//	             Fetch/Unpin; misses read from the Backing, and when all
//	             frames are full an unpinned frame is evicted by the
//	             clock algorithm (dirty frames are written back first).
//	             Hit/miss/eviction/flush counters feed internal/obs.
//	Backing    — where evicted and checkpointed pages live: MemBacking
//	             (a slice standing in for a disk, the default) or
//	             FileBacking (a real file, used by -data-dir).
//	Page       — the slotted-page codec: a checksummed header, a slot
//	             directory growing down the page, and tuple bytes
//	             growing up from the end, with in-page compaction when
//	             free space is fragmented.
//	BTree      — an order-preserving in-memory B-tree from encoded keys
//	             to heap positions, with node split and merge/borrow on
//	             underflow. Rebuilt from the heap on open; tables with
//	             declared PRIMARY KEY columns keep one.
//	EncodeRow / EncodeKey — the tuple codec (self-describing, compact)
//	             and the order-preserving composite key codec the B-tree
//	             sorts by.
//
// Durability model: pages are written back on eviction and on
// Checkpoint; there is no page-level redo log. A store that uses
// FileBacking is therefore checkpoint-consistent — the federation's
// crash-safety for in-flight multitransactions comes from the mtlog
// coordinator journal and the participant redo journals, which replay
// effects above this layer.
package storage
