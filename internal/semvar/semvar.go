// Package semvar implements the first two phases of the paper's MSQL
// query processing pipeline (§4.3): multiple identifier substitution and
// disambiguation.
//
// Given the current USE scope, the LET bindings and a query body, Expand
// generates all possible substitutions of multiple identifiers ('%'
// patterns, LET semantic variables, '~' optional columns) against the
// Global Data Dictionary, and discards non-pertinent elementary queries —
// those for which some required object does not exist in a database.
//
// Two query shapes come out:
//
//   - fan-out queries (the common case): no table reference names another
//     scope database explicitly, so each scope database yields one (or,
//     with genuinely ambiguous patterns, several) local elementary query;
//   - global queries: at least one table is database-qualified, producing
//     a single elementary query that may join tables of several databases
//     and is later split by the decomposer.
package semvar

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"msql/internal/catalog"
	"msql/internal/msqlparser"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// Expansion errors.
var (
	ErrBadBinding = errors.New("semvar: malformed LET binding")
	ErrNoQueries  = errors.New("semvar: query is not pertinent to any database in scope")
	ErrAmbiguous  = errors.New("semvar: ambiguous reference in global query")
	ErrUnresolved = errors.New("semvar: unresolved reference in global query")
)

// ScopeEntry is one database of the current USE scope.
type ScopeEntry struct {
	Database string
	Name     string // alias when given, else the database name
	Vital    bool
}

// ScopeFromUse converts a parsed USE statement into scope entries.
func ScopeFromUse(u *msqlparser.UseStmt) []ScopeEntry {
	out := make([]ScopeEntry, len(u.Entries))
	for i, e := range u.Entries {
		out[i] = ScopeEntry{Database: e.Database, Name: e.Name(), Vital: e.Vital}
	}
	return out
}

// Elementary is one fully qualified elementary query.
type Elementary struct {
	// Entry is the scope database the query runs against (fan-out mode).
	Entry ScopeEntry
	// Global marks a cross-database query for the decomposer; Entry is
	// then meaningless.
	Global bool
	// Stmt is the substituted statement. In global mode all table names
	// are database-qualified.
	Stmt sqlparser.Statement
}

// Skip records why a scope database produced no elementary query.
type Skip struct {
	Entry  ScopeEntry
	Reason string
}

// Result is the outcome of expansion.
type Result struct {
	Queries []Elementary
	Skipped []Skip
}

// Expand runs multiple identifier substitution and disambiguation.
func Expand(gdd *catalog.GDD, scope []ScopeEntry, lets []msqlparser.LetBinding, body sqlparser.Statement) (*Result, error) {
	if len(scope) == 0 {
		return nil, fmt.Errorf("semvar: empty scope — issue USE first")
	}
	if err := validateBindings(scope, lets); err != nil {
		return nil, err
	}
	tables := collectTableTexts(body)
	if isGlobal(tables, scope) {
		el, err := expandGlobal(gdd, scope, lets, body)
		if err != nil {
			return nil, err
		}
		return &Result{Queries: []Elementary{*el}}, nil
	}
	res := &Result{}
	for i, entry := range scope {
		ex := &entryExpander{
			gdd:        gdd,
			entry:      entry,
			varMap:     bindingMap(lets, i),
			body:       body,
			aliases:    fromAliases(body),
			defTargets: definitionTargets(body),
		}
		queries, reason := ex.expand()
		if reason != "" {
			res.Skipped = append(res.Skipped, Skip{Entry: entry, Reason: reason})
			continue
		}
		res.Queries = append(res.Queries, queries...)
	}
	if len(res.Queries) == 0 {
		reasons := make([]string, 0, len(res.Skipped))
		for _, s := range res.Skipped {
			reasons = append(reasons, s.Entry.Name+": "+s.Reason)
		}
		return nil, fmt.Errorf("%w (%s)", ErrNoQueries, strings.Join(reasons, "; "))
	}
	return res, nil
}

func validateBindings(scope []ScopeEntry, lets []msqlparser.LetBinding) error {
	for _, b := range lets {
		if len(b.Var) == 0 {
			return fmt.Errorf("%w: empty variable path", ErrBadBinding)
		}
		if len(b.Designators) > len(scope) {
			return fmt.Errorf("%w: %s has %d designators for %d databases in scope",
				ErrBadBinding, strings.Join(b.Var, "."), len(b.Designators), len(scope))
		}
		for _, d := range b.Designators {
			if len(d.Parts) != len(b.Var) {
				return fmt.Errorf("%w: designator %s does not match variable %s",
					ErrBadBinding, strings.Join(d.Names(), "."), strings.Join(b.Var, "."))
			}
			if len(d.Parts) > 0 && d.Parts[0].IsExpr() {
				return fmt.Errorf("%w: a transformation cannot designate a table (%s)",
					ErrBadBinding, strings.Join(b.Var, "."))
			}
		}
	}
	return nil
}

// bindTarget is what a semantic-variable component resolves to in one
// database: a concrete object name, or a transformation expression over
// the database's local columns.
type bindTarget struct {
	name string
	expr sqlparser.Expr
}

// bindingMap builds the component→target map for scope position i.
// Component 0 of each variable is a table name; the rest are columns or
// transformations.
func bindingMap(lets []msqlparser.LetBinding, i int) map[string]bindTarget {
	m := make(map[string]bindTarget)
	for _, b := range lets {
		if i >= len(b.Designators) {
			continue
		}
		for j, comp := range b.Var {
			part := b.Designators[i].Parts[j]
			if part.IsExpr() {
				m[comp] = bindTarget{expr: part.Expr}
			} else {
				m[comp] = bindTarget{name: part.Name}
			}
		}
	}
	return m
}

// collectTableTexts gathers every table reference in the statement,
// including those in subqueries, as original dotted spellings.
func collectTableTexts(s sqlparser.Statement) []sqlparser.ObjectName {
	var out []sqlparser.ObjectName
	add := func(n sqlparser.ObjectName) { out = append(out, n) }
	switch st := s.(type) {
	case *sqlparser.SelectStmt:
		collectSelectTables(st, add)
	case *sqlparser.InsertStmt:
		add(st.Table)
		if st.Query != nil {
			collectSelectTables(st.Query, add)
		}
	case *sqlparser.UpdateStmt:
		add(st.Table)
	case *sqlparser.DeleteStmt:
		add(st.Table)
	case *sqlparser.CreateTableStmt:
		add(st.Table)
	case *sqlparser.DropTableStmt:
		add(st.Table)
	case *sqlparser.CreateViewStmt:
		add(st.View)
		collectSelectTables(st.Query, add)
	case *sqlparser.DropViewStmt:
		add(st.View)
	}
	// Subqueries inside expressions.
	sqlparser.WalkExprs(s, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			for _, f := range x.Query.From {
				add(f.Name)
			}
		case *sqlparser.InExpr:
			if x.Query != nil {
				for _, f := range x.Query.From {
					add(f.Name)
				}
			}
		}
	})
	return out
}

func collectSelectTables(sel *sqlparser.SelectStmt, add func(sqlparser.ObjectName)) {
	if sel == nil {
		return
	}
	for _, f := range sel.From {
		add(f.Name)
	}
	for _, u := range sel.Unions {
		collectSelectTables(u.Select, add)
	}
}

// IsGlobalQuery reports whether a statement explicitly references scope
// databases in its table names, making it a cross-database (global)
// query rather than a fan-out multiple query. The executor uses this to
// route statements: global ones form their own synchronization unit.
func IsGlobalQuery(stmt sqlparser.Statement, scope []ScopeEntry) bool {
	return isGlobal(collectTableTexts(stmt), scope)
}

// isGlobal reports whether any table reference carries an explicit scope
// database (or alias) prefix, which makes the query a cross-database join
// handled by the decomposer.
func isGlobal(tables []sqlparser.ObjectName, scope []ScopeEntry) bool {
	names := make(map[string]bool, len(scope)*2)
	for _, e := range scope {
		names[e.Database] = true
		names[e.Name] = true
	}
	for _, t := range tables {
		if len(t.Parts) >= 2 && names[t.Parts[0]] {
			return true
		}
	}
	return false
}

// fromAliases maps FROM aliases to the original table spelling.
func fromAliases(s sqlparser.Statement) map[string]string {
	m := make(map[string]string)
	var scan func(sel *sqlparser.SelectStmt)
	scan = func(sel *sqlparser.SelectStmt) {
		if sel == nil {
			return
		}
		for _, f := range sel.From {
			if f.Alias != "" {
				m[f.Alias] = f.Name.String()
			}
		}
		for _, u := range sel.Unions {
			scan(u.Select)
		}
	}
	switch st := s.(type) {
	case *sqlparser.SelectStmt:
		scan(st)
	case *sqlparser.InsertStmt:
		scan(st.Query)
	}
	sqlparser.WalkExprs(s, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			scan(x.Query)
		case *sqlparser.InExpr:
			scan(x.Query)
		}
	})
	return m
}

// projectionAliases collects output aliases usable in ORDER BY.
func projectionAliases(s sqlparser.Statement) map[string]bool {
	m := make(map[string]bool)
	if sel, ok := s.(*sqlparser.SelectStmt); ok {
		for _, it := range sel.Items {
			if it.Alias != "" {
				m[it.Alias] = true
			}
		}
	}
	return m
}

// definitionTargets returns table names a statement defines rather than
// reads: CREATE TABLE/VIEW targets need no GDD entry yet.
func definitionTargets(s sqlparser.Statement) map[string]bool {
	out := map[string]bool{}
	switch st := s.(type) {
	case *sqlparser.CreateTableStmt:
		out[st.Table.String()] = true
	case *sqlparser.CreateViewStmt:
		out[st.View.String()] = true
	}
	return out
}

// entryExpander resolves one scope database in fan-out mode.
type entryExpander struct {
	gdd        *catalog.GDD
	entry      ScopeEntry
	varMap     map[string]bindTarget
	body       sqlparser.Statement
	aliases    map[string]string
	defTargets map[string]bool
}

// expand returns the elementary queries for this database, or a skip
// reason when the query is not pertinent here.
func (ex *entryExpander) expand() ([]Elementary, string) {
	db := ex.entry.Database
	tables := collectTableTexts(ex.body)

	// Distinct table spellings, in first-appearance order.
	var tableTexts []string
	seen := map[string]bool{}
	for _, t := range tables {
		key := t.String()
		if !seen[key] {
			seen[key] = true
			tableTexts = append(tableTexts, key)
		}
	}

	// Resolve candidates per table spelling.
	candidates := make(map[string][]string, len(tableTexts))
	for _, text := range tableTexts {
		cands, reason := ex.tableCandidates(text)
		if reason != "" {
			return nil, reason
		}
		candidates[text] = cands
	}

	// Enumerate table choice combinations.
	var results []Elementary
	choice := make(map[string]string, len(tableTexts))
	var rec func(i int) string
	rec = func(i int) string {
		if i == len(tableTexts) {
			els, reason := ex.expandColumns(choice)
			if reason != "" {
				return reason
			}
			results = append(results, els...)
			return ""
		}
		text := tableTexts[i]
		var lastReason string
		for _, c := range candidates[text] {
			choice[text] = c
			if r := rec(i + 1); r != "" {
				lastReason = r
			}
		}
		delete(choice, text)
		return lastReason
	}
	reason := rec(0)
	if len(results) == 0 {
		if reason == "" {
			reason = "no valid substitution"
		}
		return nil, reason
	}
	_ = db
	return results, ""
}

// tableCandidates resolves a table spelling to concrete table names in
// this database.
func (ex *entryExpander) tableCandidates(text string) ([]string, string) {
	db := ex.entry.Database
	// Strip a redundant own-database prefix (db.table in fan-out mode can
	// only refer to this entry, or the query would have been global).
	name := text
	if i := strings.IndexByte(text, '.'); i >= 0 {
		prefix := text[:i]
		if prefix == db || prefix == ex.entry.Name {
			name = text[i+1:]
		}
	}
	if ex.defTargets[text] || ex.defTargets[name] {
		// A CREATE target: no dictionary entry is expected to exist.
		return []string{name}, ""
	}
	if target, ok := ex.varMap[name]; ok {
		if target.expr != nil {
			return nil, fmt.Sprintf("transformation variable %s cannot name a table", name)
		}
		if _, err := ex.gdd.Table(db, target.name); err != nil {
			return nil, fmt.Sprintf("LET designator %s not in %s", target.name, db)
		}
		return []string{target.name}, ""
	}
	if strings.Contains(name, "%") {
		matches, err := ex.gdd.TablesMatching(db, name)
		if err != nil || len(matches) == 0 {
			return nil, fmt.Sprintf("no table matching %s in %s", name, db)
		}
		return matches, ""
	}
	if _, err := ex.gdd.Table(db, name); err != nil {
		return nil, fmt.Sprintf("no table %s in %s", name, db)
	}
	return []string{name}, ""
}

// colKey identifies a column reference occurrence class for consistent
// substitution: same spelling → same replacement.
func colKey(c sqlparser.ColRef) string {
	k := strings.Join(c.Parts, ".")
	if c.Optional {
		return "~" + k
	}
	return k
}

// expandColumns resolves every column reference under a fixed table
// choice, enumerating combinations for genuinely ambiguous patterns.
func (ex *entryExpander) expandColumns(tableChoice map[string]string) ([]Elementary, string) {
	db := ex.entry.Database
	projAliases := projectionAliases(ex.body)

	// Column set of all chosen tables, with table attribution.
	chosen := make([]string, 0, len(tableChoice))
	for _, c := range tableChoice {
		chosen = append(chosen, c)
	}
	sort.Strings(chosen)
	colsOf := func(table string) []string {
		def, err := ex.gdd.Table(db, table)
		if err != nil {
			return nil
		}
		return def.ColumnNames()
	}

	// Gather distinct column reference spellings.
	var refs []sqlparser.ColRef
	seen := map[string]bool{}
	addRef := func(c sqlparser.ColRef) {
		k := colKey(c)
		if !seen[k] {
			seen[k] = true
			refs = append(refs, c)
		}
	}
	sqlparser.WalkExprs(ex.body, func(e sqlparser.Expr) {
		if c, ok := e.(sqlparser.ColRef); ok {
			addRef(c)
		}
	})
	if ins, ok := ex.body.(*sqlparser.InsertStmt); ok {
		for _, n := range ins.Columns {
			addRef(sqlparser.ColRef{Parts: []string{n}})
		}
	}

	// Resolve each spelling to candidate replacement expressions.
	type option struct {
		key   string
		exprs []sqlparser.Expr
	}
	var opts []option
	for _, ref := range refs {
		exprs, reason := ex.columnOptions(ref, tableChoice, chosen, colsOf, projAliases)
		if reason != "" {
			return nil, reason
		}
		opts = append(opts, option{key: colKey(ref), exprs: exprs})
	}

	// Enumerate combinations of column choices and rewrite.
	var out []Elementary
	assign := make(map[string]sqlparser.Expr, len(opts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(opts) {
			out = append(out, Elementary{Entry: ex.entry, Stmt: ex.rewrite(tableChoice, assign)})
			return
		}
		for _, e := range opts[i].exprs {
			assign[opts[i].key] = e
			rec(i + 1)
		}
		delete(assign, opts[i].key)
	}
	rec(0)
	return out, ""
}

// columnOptions resolves one column spelling to its candidate
// replacements for this database.
func (ex *entryExpander) columnOptions(ref sqlparser.ColRef, tableChoice map[string]string,
	chosen []string, colsOf func(string) []string, projAliases map[string]bool) ([]sqlparser.Expr, string) {

	nullExpr := func() sqlparser.Expr { return &sqlparser.Literal{Val: sqlval.Null()} }
	plain := func(parts ...string) sqlparser.Expr { return sqlparser.ColRef{Parts: parts} }

	switch len(ref.Parts) {
	case 1:
		name := ref.Parts[0]
		if target, ok := ex.varMap[name]; ok {
			if target.expr != nil {
				// Dynamic transformation: substitute the expression, as a
				// deep copy so later rewrites cannot alias AST nodes.
				return []sqlparser.Expr{sqlparser.Rewriter{}.RewriteExpr(target.expr)}, ""
			}
			for _, t := range chosen {
				for _, c := range colsOf(t) {
					if c == target.name {
						return []sqlparser.Expr{plain(target.name)}, ""
					}
				}
			}
			// The variable may be a table component used as a column — or
			// the designated column is simply absent here.
			if ref.Optional {
				return []sqlparser.Expr{nullExpr()}, ""
			}
			return nil, fmt.Sprintf("LET column %s not in chosen tables of %s", target.name, ex.entry.Database)
		}
		if strings.Contains(name, "%") {
			var matches []string
			mseen := map[string]bool{}
			for _, t := range chosen {
				for _, c := range colsOf(t) {
					if catalog.MatchName(c, name) && !mseen[c] {
						mseen[c] = true
						matches = append(matches, c)
					}
				}
			}
			sort.Strings(matches)
			if len(matches) == 0 {
				if ref.Optional {
					return []sqlparser.Expr{nullExpr()}, ""
				}
				return nil, fmt.Sprintf("no column matching %s in %s", name, ex.entry.Database)
			}
			exprs := make([]sqlparser.Expr, len(matches))
			for i, m := range matches {
				exprs[i] = plain(m)
			}
			return exprs, ""
		}
		// Plain name: a real column, a projection alias, or missing.
		for _, t := range chosen {
			for _, c := range colsOf(t) {
				if c == name {
					return []sqlparser.Expr{plain(name)}, ""
				}
			}
		}
		if projAliases[name] {
			return []sqlparser.Expr{plain(name)}, ""
		}
		if ref.Optional {
			return []sqlparser.Expr{nullExpr()}, ""
		}
		return nil, fmt.Sprintf("no column %s in %s", name, ex.entry.Database)
	case 2:
		qual, name := ref.Parts[0], ref.Parts[1]
		// Resolve the qualifier: FROM alias, semantic variable, pattern or
		// literal table spelling.
		var table string
		var keepQual string
		if orig, ok := ex.aliases[qual]; ok {
			table = tableChoice[orig]
			keepQual = qual
		} else {
			cands, reason := ex.tableCandidates(qual)
			if reason != "" {
				if ref.Optional {
					return []sqlparser.Expr{nullExpr()}, ""
				}
				return nil, reason
			}
			// Prefer the chosen table for this spelling when it was also a
			// FROM reference, else the unique candidate.
			if t, ok := tableChoice[qual]; ok {
				table = t
			} else if len(cands) == 1 {
				table = cands[0]
			} else {
				return nil, fmt.Sprintf("ambiguous qualifier %s in %s", qual, ex.entry.Database)
			}
			keepQual = table
		}
		resolve := func(colName string) ([]string, bool) {
			if target, ok := ex.varMap[colName]; ok {
				if target.expr != nil {
					// A transformation variable cannot carry a qualifier:
					// its expression already names local columns.
					return nil, false
				}
				colName = target.name
			}
			if strings.Contains(colName, "%") {
				var matches []string
				for _, c := range colsOf(table) {
					if catalog.MatchName(c, colName) {
						matches = append(matches, c)
					}
				}
				sort.Strings(matches)
				return matches, len(matches) > 0
			}
			for _, c := range colsOf(table) {
				if c == colName {
					return []string{colName}, true
				}
			}
			return nil, false
		}
		matches, ok := resolve(name)
		if !ok {
			if ref.Optional {
				return []sqlparser.Expr{nullExpr()}, ""
			}
			return nil, fmt.Sprintf("no column %s.%s in %s", qual, name, ex.entry.Database)
		}
		exprs := make([]sqlparser.Expr, len(matches))
		for i, m := range matches {
			exprs[i] = plain(keepQual, m)
		}
		return exprs, ""
	default:
		// db.table.column with this entry's prefix: strip and retry.
		if ref.Parts[0] == ex.entry.Database || ref.Parts[0] == ex.entry.Name {
			return ex.columnOptions(sqlparser.ColRef{Parts: ref.Parts[1:], Optional: ref.Optional},
				tableChoice, chosen, colsOf, projAliases)
		}
		return nil, fmt.Sprintf("reference %s names a database outside this query's span", colKey(ref))
	}
}

// rewrite applies the chosen substitutions to the body.
func (ex *entryExpander) rewrite(tableChoice map[string]string, colAssign map[string]sqlparser.Expr) sqlparser.Statement {
	rw := sqlparser.Rewriter{
		Table: func(n sqlparser.ObjectName) sqlparser.ObjectName {
			if c, ok := tableChoice[n.String()]; ok {
				return sqlparser.Name(c)
			}
			// Own-db prefixed spelling.
			if len(n.Parts) >= 2 && (n.Parts[0] == ex.entry.Database || n.Parts[0] == ex.entry.Name) {
				if c, ok := tableChoice[strings.Join(n.Parts[1:], ".")]; ok {
					return sqlparser.Name(c)
				}
			}
			return n
		},
		Col: func(c sqlparser.ColRef) sqlparser.Expr {
			if e, ok := colAssign[colKey(c)]; ok {
				return e
			}
			c.Optional = false
			return c
		},
	}
	return sqlparser.RewriteStatement(ex.body, rw)
}
