package semvar

import (
	"fmt"
	"sort"
	"strings"

	"msql/internal/catalog"
	"msql/internal/msqlparser"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// globalRef is one resolved table reference of a global (cross-database)
// query.
type globalRef struct {
	origKey string // original dotted spelling
	alias   string // effective alias in the rewritten query
	db      string
	table   string
	entry   int // index into scope
}

// expandGlobal resolves a query whose table references name scope
// databases explicitly. The result is a single elementary query with
// database-qualified table names, ready for the decomposer.
func expandGlobal(gdd *catalog.GDD, scope []ScopeEntry, lets []msqlparser.LetBinding, body sqlparser.Statement) (*Elementary, error) {
	entryOf := make(map[string]int, len(scope)*2)
	for i, e := range scope {
		entryOf[e.Database] = i
		entryOf[e.Name] = i
	}

	aliases := fromAliases(body)
	tables := collectTableTexts(body)

	// Resolve each distinct table spelling.
	refs := make(map[string]*globalRef)
	var order []string
	usedAlias := map[string]bool{}
	resolveTable := func(n sqlparser.ObjectName, explicitAlias string) error {
		key := n.String()
		if _, ok := refs[key]; ok {
			return nil
		}
		var db string
		var entryIdx int
		name := key
		if len(n.Parts) >= 2 {
			if idx, ok := entryOf[n.Parts[0]]; ok {
				entryIdx = idx
				db = scope[idx].Database
				name = strings.Join(n.Parts[1:], ".")
			} else {
				return fmt.Errorf("%w: %s names an unknown database", ErrUnresolved, key)
			}
		} else {
			// Unprefixed: the table must live in exactly one scope database.
			var hits []int
			for i, e := range scope {
				if cands := matchTables(gdd, e.Database, name, bindingMap(lets, i)); len(cands) > 0 {
					hits = append(hits, i)
				}
			}
			if len(hits) == 0 {
				return fmt.Errorf("%w: no database in scope has table %s", ErrUnresolved, name)
			}
			if len(hits) > 1 {
				return fmt.Errorf("%w: table %s exists in several scope databases; qualify it", ErrAmbiguous, name)
			}
			entryIdx = hits[0]
			db = scope[entryIdx].Database
		}
		cands := matchTables(gdd, db, name, bindingMap(lets, entryIdx))
		if len(cands) == 0 {
			return fmt.Errorf("%w: no table matching %s in %s", ErrUnresolved, name, db)
		}
		if len(cands) > 1 {
			return fmt.Errorf("%w: pattern %s matches several tables in %s", ErrAmbiguous, name, db)
		}
		alias := explicitAlias
		if alias == "" {
			alias = cands[0]
		}
		if usedAlias[alias] {
			return fmt.Errorf("%w: alias %s used twice; alias your global FROM tables", ErrAmbiguous, alias)
		}
		usedAlias[alias] = true
		refs[key] = &globalRef{origKey: key, alias: alias, db: db, table: cands[0], entry: entryIdx}
		order = append(order, key)
		return nil
	}

	// FROM clauses carry the aliases; resolve them first.
	if err := eachTableRef(body, func(ref sqlparser.TableRef) error {
		return resolveTable(ref.Name, ref.Alias)
	}); err != nil {
		return nil, err
	}
	// DML targets without FROM entries.
	for _, t := range tables {
		if _, ok := refs[t.String()]; !ok {
			if err := resolveTable(t, ""); err != nil {
				return nil, err
			}
		}
	}

	// Column resolution.
	projAliases := projectionAliases(body)
	colAssign := make(map[string]sqlparser.Expr)
	var colErr error
	sqlparser.WalkExprs(body, func(e sqlparser.Expr) {
		c, ok := e.(sqlparser.ColRef)
		if !ok || colErr != nil {
			return
		}
		key := colKey(c)
		if _, done := colAssign[key]; done {
			return
		}
		repl, err := resolveGlobalColumn(gdd, scope, lets, refs, aliases, projAliases, c)
		if err != nil {
			colErr = err
			return
		}
		colAssign[key] = repl
	})
	if colErr != nil {
		return nil, colErr
	}

	rw := sqlparser.Rewriter{
		Table: func(n sqlparser.ObjectName) sqlparser.ObjectName {
			if r, ok := refs[n.String()]; ok {
				return sqlparser.Name(r.db, r.table)
			}
			return n
		},
		Col: func(c sqlparser.ColRef) sqlparser.Expr {
			if e, ok := colAssign[colKey(c)]; ok {
				return e
			}
			c.Optional = false
			return c
		},
	}
	out := sqlparser.RewriteStatement(body, rw)
	// Ensure FROM aliases are present so the decomposer and local engines
	// resolve qualifiers uniformly.
	applyAliases(out, refs)
	return &Elementary{Global: true, Stmt: out}, nil
}

// matchTables resolves a table spelling (pattern, LET variable or literal)
// within one database. Transformation variables never name tables.
func matchTables(gdd *catalog.GDD, db, name string, varMap map[string]bindTarget) []string {
	if target, ok := varMap[name]; ok {
		if target.expr != nil {
			return nil
		}
		name = target.name
	}
	if strings.Contains(name, "%") {
		m, err := gdd.TablesMatching(db, name)
		if err != nil {
			return nil
		}
		return m
	}
	if _, err := gdd.Table(db, name); err != nil {
		return nil
	}
	return []string{name}
}

// eachTableRef visits FROM table references (with aliases) across the
// statement including subqueries.
func eachTableRef(s sqlparser.Statement, fn func(sqlparser.TableRef) error) error {
	var err error
	visitSel := func(sel *sqlparser.SelectStmt) {
		if sel == nil || err != nil {
			return
		}
		for _, f := range sel.From {
			if err == nil {
				err = fn(f)
			}
		}
	}
	switch st := s.(type) {
	case *sqlparser.SelectStmt:
		visitSel(st)
	case *sqlparser.InsertStmt:
		visitSel(st.Query)
	}
	sqlparser.WalkExprs(s, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			visitSel(x.Query)
		case *sqlparser.InExpr:
			visitSel(x.Query)
		}
	})
	return err
}

// resolveGlobalColumn maps one column spelling of a global query.
func resolveGlobalColumn(gdd *catalog.GDD, scope []ScopeEntry, lets []msqlparser.LetBinding,
	refs map[string]*globalRef, aliases map[string]string, projAliases map[string]bool,
	c sqlparser.ColRef) (sqlparser.Expr, error) {

	nullLit := &sqlparser.Literal{Val: sqlval.Null()}
	colsOf := func(r *globalRef) []string {
		def, err := gdd.Table(r.db, r.table)
		if err != nil {
			return nil
		}
		return def.ColumnNames()
	}
	resolveIn := func(r *globalRef, name string) []string {
		if target, ok := bindingMap(lets, r.entry)[name]; ok {
			if target.expr != nil {
				// Transformations are a fan-out feature; global queries
				// must name concrete columns.
				return nil
			}
			name = target.name
		}
		var out []string
		for _, col := range colsOf(r) {
			if catalog.MatchName(col, name) {
				out = append(out, col)
			}
		}
		sort.Strings(out)
		return out
	}

	switch len(c.Parts) {
	case 1:
		name := c.Parts[0]
		type hit struct {
			r   *globalRef
			col string
		}
		var hits []hit
		for _, r := range refs {
			for _, col := range resolveIn(r, name) {
				hits = append(hits, hit{r: r, col: col})
			}
		}
		if len(hits) == 0 {
			if projAliases[name] {
				return sqlparser.ColRef{Parts: []string{name}}, nil
			}
			if c.Optional {
				return nullLit, nil
			}
			return nil, fmt.Errorf("%w: column %s", ErrUnresolved, name)
		}
		if len(hits) > 1 {
			return nil, fmt.Errorf("%w: column %s matches in several tables; qualify it", ErrAmbiguous, name)
		}
		if len(refs) == 1 {
			// Single-table global query: keep references unqualified so
			// the pushed-down local statement stays clean.
			return sqlparser.ColRef{Parts: []string{hits[0].col}}, nil
		}
		return sqlparser.ColRef{Parts: []string{hits[0].r.alias, hits[0].col}}, nil
	case 2:
		qual, name := c.Parts[0], c.Parts[1]
		r := findRef(refs, aliases, qual, "")
		if r == nil {
			if c.Optional {
				return nullLit, nil
			}
			return nil, fmt.Errorf("%w: qualifier %s", ErrUnresolved, qual)
		}
		matches := resolveIn(r, name)
		if len(matches) == 0 {
			if c.Optional {
				return nullLit, nil
			}
			return nil, fmt.Errorf("%w: column %s.%s", ErrUnresolved, qual, name)
		}
		if len(matches) > 1 {
			return nil, fmt.Errorf("%w: pattern %s.%s", ErrAmbiguous, qual, name)
		}
		return sqlparser.ColRef{Parts: []string{r.alias, matches[0]}}, nil
	default:
		// db.table.column
		qual := strings.Join(c.Parts[:len(c.Parts)-1], ".")
		name := c.Parts[len(c.Parts)-1]
		r := findRef(refs, aliases, qual, "")
		if r == nil {
			if c.Optional {
				return nullLit, nil
			}
			return nil, fmt.Errorf("%w: qualifier %s", ErrUnresolved, qual)
		}
		matches := resolveIn(r, name)
		if len(matches) != 1 {
			if c.Optional && len(matches) == 0 {
				return nullLit, nil
			}
			return nil, fmt.Errorf("%w: %s", ErrUnresolved, colKey(c))
		}
		return sqlparser.ColRef{Parts: []string{r.alias, matches[0]}}, nil
	}
}

// findRef locates the table reference a qualifier denotes: an alias, an
// original spelling, or a bare table name.
func findRef(refs map[string]*globalRef, aliases map[string]string, qual, _ string) *globalRef {
	if orig, ok := aliases[qual]; ok {
		if r, ok := refs[orig]; ok {
			return r
		}
	}
	if r, ok := refs[qual]; ok {
		return r
	}
	for _, r := range refs {
		if r.alias == qual || r.table == qual {
			return r
		}
	}
	return nil
}

// applyAliases sets the resolved alias on every FROM reference of the
// rewritten statement.
func applyAliases(s sqlparser.Statement, refs map[string]*globalRef) {
	byDBTable := make(map[string]string, len(refs))
	for _, r := range refs {
		byDBTable[r.db+"."+r.table] = r.alias
	}
	fix := func(sel *sqlparser.SelectStmt) {
		if sel == nil {
			return
		}
		for i := range sel.From {
			if sel.From[i].Alias == "" {
				if a, ok := byDBTable[sel.From[i].Name.String()]; ok {
					sel.From[i].Alias = a
				}
			}
		}
	}
	switch st := s.(type) {
	case *sqlparser.SelectStmt:
		fix(st)
	case *sqlparser.InsertStmt:
		fix(st.Query)
	}
	sqlparser.WalkExprs(s, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			fix(x.Query)
		case *sqlparser.InExpr:
			fix(x.Query)
		}
	})
}
