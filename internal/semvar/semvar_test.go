package semvar

import (
	"errors"
	"strings"
	"testing"

	"msql/internal/catalog"
	"msql/internal/msqlparser"
	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// paperGDD builds the appendix schemas of all five databases.
func paperGDD(t testing.TB) *catalog.GDD {
	t.Helper()
	g := catalog.NewGDD()
	put := func(db, svc, table string, cols ...string) {
		if _, err := g.ServiceOf(db); err != nil {
			g.DefineDatabase(db, svc)
		}
		def := catalog.TableDef{Name: table}
		for _, c := range cols {
			def.Columns = append(def.Columns, relstore.Column{Name: c, Type: sqlval.KindString})
		}
		if err := g.PutTable(db, def); err != nil {
			t.Fatal(err)
		}
	}
	put("continental", "svc1", "flights", "flnu", "source", "dep", "destination", "arr", "day", "rate")
	put("continental", "svc1", "f838", "seatnu", "seatty", "seatstatus", "clientname")
	put("delta", "svc2", "flight", "fnu", "source", "dest", "dep", "arr", "day", "rate")
	put("delta", "svc2", "fnu747", "snu", "sty", "sstat", "passname")
	put("united", "svc3", "flight", "fn", "sour", "dest", "depa", "arri", "day", "rates")
	put("united", "svc3", "fn727", "sn", "st", "sst", "pasna")
	put("avis", "svc4", "cars", "code", "cartype", "rate", "carst", "from_d", "to_d", "client")
	put("national", "svc5", "vehicle", "vcode", "vty", "vstat", "from_d", "to_d", "client")
	return g
}

func parseBody(t *testing.T, src string) sqlparser.Statement {
	t.Helper()
	s, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parseUse(t *testing.T, src string) []ScopeEntry {
	t.Helper()
	st, err := msqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return ScopeFromUse(st.(*msqlparser.UseStmt))
}

func parseLet(t *testing.T, src string) []msqlparser.LetBinding {
	t.Helper()
	st, err := msqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*msqlparser.LetStmt).Bindings
}

func deparsed(t *testing.T, r *Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, e := range r.Queries {
		key := e.Entry.Name
		if e.Global {
			key = "(global)"
		}
		out[key] = sqlparser.Deparse(e.Stmt)
	}
	return out
}

// The Section 2 example: naming heterogeneity via LET and %code, schema
// heterogeneity via ~rate.
func TestExpandSection2Example(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis national")
	lets := parseLet(t, `LET car.type.status BE cars.cartype.carst vehicle.vty.vstat`)
	body := parseBody(t, "SELECT %code, type, ~rate FROM car WHERE status = 'available'")

	res, err := Expand(g, scope, lets, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 2 || len(res.Skipped) != 0 {
		t.Fatalf("queries = %d skipped = %v", len(res.Queries), res.Skipped)
	}
	q := deparsed(t, res)
	wantAvis := "SELECT code, cartype, rate FROM cars WHERE carst = 'available'"
	if q["avis"] != wantAvis {
		t.Errorf("avis:\n got  %s\n want %s", q["avis"], wantAvis)
	}
	// national lacks a rate column: the optional column degrades to NULL.
	wantNational := "SELECT vcode, vty, NULL FROM vehicle WHERE vstat = 'available'"
	if q["national"] != wantNational {
		t.Errorf("national:\n got  %s\n want %s", q["national"], wantNational)
	}
}

// The Section 3.2 multiple update across three airline databases.
func TestExpandSection32Update(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental VITAL delta united VITAL")
	body := parseBody(t, `UPDATE flight% SET rate% = rate% * 1.1
		WHERE sour% = 'Houston' AND dest% = 'San Antonio'`)

	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 3 {
		t.Fatalf("queries = %d (%v)", len(res.Queries), res.Skipped)
	}
	q := deparsed(t, res)
	want := map[string]string{
		"continental": "UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio'",
		"delta":       "UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio'",
		"united":      "UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio'",
	}
	for db, w := range want {
		if q[db] != w {
			t.Errorf("%s:\n got  %s\n want %s", db, q[db], w)
		}
	}
	// Vital designators survive into the elementary queries.
	vital := map[string]bool{}
	for _, e := range res.Queries {
		vital[e.Entry.Name] = e.Entry.Vital
	}
	if !vital["continental"] || vital["delta"] || !vital["united"] {
		t.Fatalf("vital = %v", vital)
	}
}

// The travel-agent reservation with a scalar subquery referencing the
// semantic variable inside the nested query.
func TestExpandTravelAgentReservation(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental delta")
	lets := parseLet(t, `LET fitab.snu.sstat.clname BE
		f838.seatnu.seatstatus.clientname
		fnu747.snu.sstat.passname`)
	body := parseBody(t, `UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'
		WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE')`)

	res, err := Expand(g, scope, lets, body)
	if err != nil {
		t.Fatal(err)
	}
	q := deparsed(t, res)
	wantCont := "UPDATE f838 SET seatstatus = 'TAKEN', clientname = 'wenders' WHERE seatnu = (SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE')"
	if q["continental"] != wantCont {
		t.Errorf("continental:\n got  %s\n want %s", q["continental"], wantCont)
	}
	wantDelta := "UPDATE fnu747 SET sstat = 'TAKEN', passname = 'wenders' WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE')"
	if q["delta"] != wantDelta {
		t.Errorf("delta:\n got  %s\n want %s", q["delta"], wantDelta)
	}
}

// Dynamic transformation of attributes' values (§2): a LET designator
// carries an expression, e.g. converting avis' daily rate to a weekly
// figure while national (which lacks a rate) maps it to NULL elsewhere.
func TestExpandTransformationVariable(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis national")
	lets := parseLet(t, `LET car.weekly BE cars.(rate * 7) vehicle.(0)`)
	body := parseBody(t, "SELECT %code, weekly FROM car")
	res, err := Expand(g, scope, lets, body)
	if err != nil {
		t.Fatal(err)
	}
	q := deparsed(t, res)
	if q["avis"] != "SELECT code, rate * 7 FROM cars" {
		t.Errorf("avis: %s", q["avis"])
	}
	if q["national"] != "SELECT vcode, 0 FROM vehicle" {
		t.Errorf("national: %s", q["national"])
	}
}

func TestExpandTransformationInWhere(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis")
	lets := parseLet(t, "LET car.usd BE cars.(rate * 2)")
	body := parseBody(t, "SELECT code FROM car WHERE usd > 80")
	res, err := Expand(g, scope, lets, body)
	if err != nil {
		t.Fatal(err)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	if out != "SELECT code FROM cars WHERE rate * 2 > 80" {
		t.Errorf("got %s", out)
	}
}

func TestExpandTransformationErrors(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis")
	// Transformation at table position.
	lets := parseLet(t, "LET car BE (rate)")
	body := parseBody(t, "SELECT code FROM car")
	if _, err := Expand(g, scope, lets, body); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandSkipsNonPertinent(t *testing.T) {
	g := paperGDD(t)
	// cars% only matches in avis; national is skipped.
	scope := parseUse(t, "USE avis national")
	body := parseBody(t, "SELECT code FROM cars%")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 || res.Queries[0].Entry.Name != "avis" {
		t.Fatalf("queries = %+v", res.Queries)
	}
	if len(res.Skipped) != 1 || res.Skipped[0].Entry.Name != "national" {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	if !strings.Contains(res.Skipped[0].Reason, "cars%") {
		t.Fatalf("reason = %q", res.Skipped[0].Reason)
	}
}

func TestExpandNoPertinentDatabases(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis national")
	body := parseBody(t, "SELECT x FROM nothing%")
	_, err := Expand(g, scope, nil, body)
	if !errors.Is(err, ErrNoQueries) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandColumnPatternMissingIsSkip(t *testing.T) {
	g := paperGDD(t)
	// seatnu% matches only in continental's f838; delta's fnu747 has snu.
	scope := parseUse(t, "USE continental delta")
	body := parseBody(t, "SELECT seatnu% FROM f%")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 || res.Queries[0].Entry.Name != "continental" {
		t.Fatalf("queries = %+v, skipped = %+v", res.Queries, res.Skipped)
	}
}

func TestExpandAmbiguousPatternEnumerates(t *testing.T) {
	g := paperGDD(t)
	// d% matches dep and destination and day in continental.flights.
	scope := parseUse(t, "USE continental")
	body := parseBody(t, "SELECT d% FROM flights")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 3 {
		t.Fatalf("expected 3 candidate substitutions, got %d", len(res.Queries))
	}
	var got []string
	for _, e := range res.Queries {
		got = append(got, sqlparser.Deparse(e.Stmt))
	}
	joined := strings.Join(got, "|")
	for _, w := range []string{"SELECT day FROM flights", "SELECT dep FROM flights", "SELECT destination FROM flights"} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing %q in %v", w, got)
		}
	}
}

func TestExpandConsistentSubstitution(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE united")
	// rate% appears twice; both occurrences must pick the same column.
	body := parseBody(t, "UPDATE flight% SET rate% = rate% * 2")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	if out != "UPDATE flight SET rates = rates * 2" {
		t.Fatalf("got %s", out)
	}
}

func TestExpandQualifiedColumnsAndAliases(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental")
	body := parseBody(t, "SELECT f.flnu, s.seatnu FROM flights f, f838 s WHERE f.day = s.seatty")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	want := "SELECT f.flnu, s.seatnu FROM flights f, f838 s WHERE f.day = s.seatty"
	if out != want {
		t.Fatalf("got %s, want %s", out, want)
	}
}

func TestExpandGlobalJoin(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental united")
	body := parseBody(t, `SELECT c.flnu, u.fn FROM continental.flights c, united.flight u
		WHERE c.rate > u.rates`)
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 || !res.Queries[0].Global {
		t.Fatalf("queries = %+v", res.Queries)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	want := "SELECT c.flnu, u.fn FROM continental.flights c, united.flight u WHERE c.rate > u.rates"
	if out != want {
		t.Fatalf("got  %s\nwant %s", out, want)
	}
}

func TestExpandGlobalWithPatternsAndUnqualified(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental united")
	// flight% within the united prefix; unqualified seatnu is unique to
	// continental.f838.
	body := parseBody(t, `SELECT seatnu, u.rate% FROM continental.f838 s, united.flight% u`)
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	want := "SELECT s.seatnu, u.rates FROM continental.f838 s, united.flight u"
	if out != want {
		t.Fatalf("got  %s\nwant %s", out, want)
	}
}

func TestExpandGlobalAmbiguousColumn(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental delta")
	// "source" exists in both flights and flight.
	body := parseBody(t, "SELECT source FROM continental.flights, delta.flight")
	_, err := Expand(g, scope, nil, body)
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandGlobalUnknownQualifier(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental delta")
	body := parseBody(t, "SELECT x.flnu FROM continental.flights f")
	_, err := Expand(g, scope, nil, body)
	if !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandGlobalDuplicateUnaliasedTables(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE delta united")
	// Both databases have a table named flight; without aliases the
	// qualifiers collide.
	body := parseBody(t, "SELECT fnu FROM delta.flight, united.flight")
	_, err := Expand(g, scope, nil, body)
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandGlobalAliasedSameNameTables(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE delta united")
	body := parseBody(t, "SELECT d.fnu, u.fn FROM delta.flight d, united.flight u WHERE d.rate = u.rates")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	want := "SELECT d.fnu, u.fn FROM delta.flight d, united.flight u WHERE d.rate = u.rates"
	if out != want {
		t.Fatalf("got  %s\nwant %s", out, want)
	}
}

func TestExpandGlobalThreePartColumnRef(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental united")
	body := parseBody(t, `SELECT continental.flights.flnu FROM continental.flights, united.flight u
		WHERE continental.flights.rate < u.rates`)
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	want := "SELECT flights.flnu FROM continental.flights flights, united.flight u WHERE flights.rate < u.rates"
	if out != want {
		t.Fatalf("got  %s\nwant %s", out, want)
	}
}

func TestExpandGlobalOptionalColumn(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis national")
	// vehicle has no rate column; the optional marker degrades to NULL in
	// the global query too.
	body := parseBody(t, "SELECT c.code, ~missing_everywhere FROM avis.cars c")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	out := sqlparser.Deparse(res.Queries[0].Stmt)
	if out != "SELECT c.code, NULL FROM avis.cars c" {
		t.Fatalf("got %s", out)
	}
}

func TestExpandGlobalUnknownTablePattern(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental united")
	body := parseBody(t, "SELECT x.a FROM continental.bogus% x, united.flight u")
	if _, err := Expand(g, scope, nil, body); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v", err)
	}
	// Pattern matching several tables in one database is ambiguous.
	body = parseBody(t, "SELECT x.flnu FROM continental.f% x, united.flight u")
	if _, err := Expand(g, scope, nil, body); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandBadBindings(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis")
	body := parseBody(t, "SELECT code FROM cars")
	// More designators than scope databases.
	lets := parseLet(t, "LET a.b BE x.y z.w")
	if _, err := Expand(g, scope, lets, body); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("err = %v", err)
	}
	// Designator path length mismatch.
	lets = parseLet(t, "LET a.b BE x.y.z")
	if _, err := Expand(g, scope, lets, body); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandEmptyScope(t *testing.T) {
	g := paperGDD(t)
	body := parseBody(t, "SELECT code FROM cars")
	if _, err := Expand(g, nil, nil, body); err == nil {
		t.Fatal("empty scope must error")
	}
}

func TestExpandAliasedScopeEntry(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE (continental c) VITAL")
	body := parseBody(t, "SELECT flnu FROM flights")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Entry.Name != "c" || res.Queries[0].Entry.Database != "continental" || !res.Queries[0].Entry.Vital {
		t.Fatalf("entry = %+v", res.Queries[0].Entry)
	}
}

func TestExpandInsertFanOut(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE avis national")
	lets := parseLet(t, "LET cartab.ccode BE cars.code vehicle.vcode")
	body := parseBody(t, "INSERT INTO cartab (ccode) VALUES (99)")
	res, err := Expand(g, scope, lets, body)
	if err != nil {
		t.Fatal(err)
	}
	q := deparsed(t, res)
	if q["avis"] != "INSERT INTO cars (code) VALUES (99)" {
		t.Errorf("avis: %s", q["avis"])
	}
	if q["national"] != "INSERT INTO vehicle (vcode) VALUES (99)" {
		t.Errorf("national: %s", q["national"])
	}
}

func TestExpandDeleteFanOut(t *testing.T) {
	g := paperGDD(t)
	scope := parseUse(t, "USE continental delta united")
	body := parseBody(t, "DELETE FROM flight% WHERE day = 'mon'")
	res, err := Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 3 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
}
