// Package netfault is a TCP fault-injection proxy for exercising the
// federation's failure paths under realistic network conditions. It sits
// between a LAM client and a LAM TCP server and can, per proxy:
//
//   - Delay: add latency before forwarding each chunk;
//   - Blackhole: accept connections and read nothing — bytes sit in
//     kernel buffers and the peer blocks until its deadline fires;
//   - Sever: abruptly close every active connection (a network partition
//     or LAM crash), while continuing to accept new ones — the window the
//     in-doubt protocol exists for;
//   - Refuse: reject new connections (site unreachable).
//
// It complements ldbms.FaultInjector, which injects failures *inside* the
// server: netfault injects them *between* coordinator and server, where
// the outcome of an in-flight operation is unknowable — e.g. killing a
// LAM between PREPARE and COMMIT.
package netfault

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is one forwarding listener in front of a backend address.
type Proxy struct {
	backend string
	ln      net.Listener

	mu        sync.Mutex
	cond      *sync.Cond
	delay     time.Duration
	blackhole bool
	refuse    bool
	closed    bool
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
}

// New starts a proxy on an ephemeral loopback port forwarding to backend.
func New(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{backend: backend, ln: ln, conns: make(map[net.Conn]struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; clients dial this instead of
// the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetDelay adds d of latency before each forwarded chunk (0 disables).
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetBlackhole stops (true) or resumes (false) forwarding on all current
// and future connections. Black-holed peers see an open connection that
// never answers — the failure mode deadlines exist for.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
	p.cond.Broadcast()
}

// SetRefuse makes the proxy close new connections immediately (true) or
// accept them again (false). Active connections are unaffected.
func (p *Proxy) SetRefuse(on bool) {
	p.mu.Lock()
	p.refuse = on
	p.mu.Unlock()
}

// Sever abruptly closes every active connection, like a partition or LAM
// crash. New connections are still accepted, so a recovering coordinator
// can reconnect — use SetRefuse or Close for a permanent outage.
func (p *Proxy) Sever() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Close shuts the proxy down: the listener stops and all connections die.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.refuse {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	drop := func(c net.Conn) {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
		c.Close()
	}
	defer drop(client)

	// Wait out an initial blackhole before even contacting the backend:
	// the client sees an accepted-but-silent connection.
	if !p.waitForward() {
		return
	}
	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		backend.Close()
		return
	}
	p.conns[backend] = struct{}{}
	p.mu.Unlock()
	defer drop(backend)

	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 32*1024)
		for {
			if !p.waitForward() {
				return
			}
			n, err := src.Read(buf)
			if n > 0 {
				if d := p.currentDelay(); d > 0 {
					time.Sleep(d)
				}
				if !p.waitForward() {
					return
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				if err != io.EOF {
					return
				}
				// Half-close: propagate EOF but keep the other direction.
				if cw, ok := dst.(interface{ CloseWrite() error }); ok {
					_ = cw.CloseWrite()
				}
				return
			}
		}
	}
	go pipe(backend, client)
	go pipe(client, backend)
	<-done
	<-done
}

// waitForward blocks while the proxy is black-holed; it returns false when
// the proxy is closed.
func (p *Proxy) waitForward() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.blackhole && !p.closed {
		p.cond.Wait()
	}
	return !p.closed
}

func (p *Proxy) currentDelay() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delay
}
