package netfault

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					if _, err := io.WriteString(c, sc.Text()+"\n"); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func roundTrip(t *testing.T, c net.Conn, line string) (string, error) {
	t.Helper()
	if _, err := io.WriteString(c, line+"\n"); err != nil {
		return "", err
	}
	r := bufio.NewReader(c)
	return r.ReadString('\n')
}

func TestProxyForwards(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	got, err := roundTrip(t, c, "hello")
	if err != nil || strings.TrimSpace(got) != "hello" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
}

func TestProxyDelay(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(50 * time.Millisecond)

	c := dialProxy(t, p)
	start := time.Now()
	if _, err := roundTrip(t, c, "slow"); err != nil {
		t.Fatal(err)
	}
	// Request and response each pay the delay at least once.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= ~100ms with 50ms delay each way", elapsed)
	}
}

func TestProxyBlackholeBlocksAndResumes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if _, err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}

	p.SetBlackhole(true)
	if _, err := io.WriteString(c, "void\n"); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read through a black hole should time out")
	}
	c.SetReadDeadline(time.Time{})

	// Resuming delivers the buffered bytes.
	p.SetBlackhole(false)
	r := bufio.NewReader(c)
	got, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(got) != "void" {
		t.Fatalf("after resume = %q, %v", got, err)
	}
}

func TestProxySeverKillsActiveButAcceptsNew(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if _, err := roundTrip(t, c, "pre"); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := bufio.NewReader(c).ReadString('\n'); err == nil {
		t.Fatal("severed connection should be dead")
	}

	// The partition heals: a fresh connection works.
	c2 := dialProxy(t, p)
	got, err := roundTrip(t, c2, "post")
	if err != nil || strings.TrimSpace(got) != "post" {
		t.Fatalf("after sever round trip = %q, %v", got, err)
	}
}

func TestProxyRefuse(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetRefuse(true)

	c, err := net.Dial("tcp", p.Addr())
	if err == nil {
		// The TCP accept still happens; the proxy closes immediately, so the
		// first read fails.
		c.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 1)
		if _, rerr := c.Read(buf); rerr == nil {
			t.Fatal("refused connection should be closed")
		}
		c.Close()
	}

	p.SetRefuse(false)
	c2 := dialProxy(t, p)
	got, err := roundTrip(t, c2, "open")
	if err != nil || strings.TrimSpace(got) != "open" {
		t.Fatalf("after unrefuse = %q, %v", got, err)
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
