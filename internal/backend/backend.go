// Package backend defines the storage-engine seam behind a simulated
// LDBMS. The paper's federation incorporates *different* database
// products — the testbed ran Oracle, Ingres and Sybase — and the point
// of the capability profiles is that the multidatabase layer never sees
// past them. This package is the corresponding seam in code: an
// ldbms.Server executes statements against any Backend, and the two
// shipped implementations differ on purpose:
//
//   - internal/relbackend: the full transactional engine (relstore heap
//     pages + B-trees + 2PL + undo), able to hold a prepared-to-commit
//     state — the Oracle/Ingres/Sybase stand-in;
//   - internal/csvstore: a flat-file CSV engine with copy-on-write
//     statement transactions and no prepare support at all — the
//     COMMITMODE COMMIT product the paper's §3.3 compensation semantics
//     exist for.
//
// The interfaces are deliberately narrow: exactly what the session layer
// above needs to implement autocommit classes, 2PC gating, redo capture
// and IMPORT-time schema description.
package backend

import (
	"time"

	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
)

// Backend is one storage engine instance hosting named databases.
// Implementations must be safe for concurrent use by multiple sessions.
type Backend interface {
	// CreateDatabase creates a database, failing if it exists.
	CreateDatabase(name string) error
	// DatabaseNames lists hosted databases in sorted order.
	DatabaseNames() []string
	// HasDatabase reports whether the database exists.
	HasDatabase(name string) bool
	// ListTables and ListViews enumerate a database's committed schema
	// for IMPORT.
	ListTables(db string) ([]string, error)
	ListViews(db string) ([]string, error)
	// Begin opens a new transaction.
	Begin() Tx
	// Durable reports whether committed state must be checkpointed to
	// survive a restart; the session layer checkpoints after each commit
	// on durable backends.
	Durable() bool
	// Checkpoint flushes committed state to stable storage (no-op when
	// not Durable).
	Checkpoint() error
	// Close releases the engine, checkpointing first when Durable.
	Close() error
}

// Tx is one transaction: statements execute inside it and become
// visible to other transactions only at Commit. A Tx is used by a
// single session goroutine at a time.
type Tx interface {
	// Exec runs one already-parsed statement. sql is the original text
	// (engines that re-plan from text may use it; most use the AST).
	Exec(db, sql string, stmt sqlparser.Statement) (*sqlengine.Result, error)
	// Describe reports the schema of a table or view.
	Describe(db, name string) ([]relstore.Column, error)
	// Prepare moves the transaction to the prepared-to-commit state.
	// Engines without a prepare interface return an error; the session
	// layer's capability profile normally refuses before this is
	// reached.
	Prepare() error
	Commit() error
	Rollback() error
	// SetLockTimeout bounds lock waits for engines that lock; others
	// ignore it.
	SetLockTimeout(d time.Duration)
}
