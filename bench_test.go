package msql

// One benchmark per experiment of EXPERIMENTS.md. The comparative tables
// (sequential vs parallel, hold vs early-release, ...) are printed by
// cmd/msqlbench; these benchmarks track the cost of each experiment's
// primary code path with testing.B.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/experiments"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/sqlengine"
)

func mustDemo(b *testing.B, opts demo.Options) *core.Federation {
	b.Helper()
	fed, err := demo.Build(opts)
	if err != nil {
		b.Fatal(err)
	}
	return fed
}

func mustScript(b *testing.B, fed *core.Federation, src string) []*core.Result {
	b.Helper()
	results, err := fed.ExecScript(src)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkE1_MultipleSelect: the Section 2 multiple query end to end
// (parse, substitution, plan, parallel execution, multitable assembly).
func BenchmarkE1_MultipleSelect(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, experiments.Section2Query)
	}
}

// BenchmarkE2_VitalUpdate: the Section 3.2 vital update, success path
// (prepare both vital subqueries, then commit).
func BenchmarkE2_VitalUpdate(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, experiments.Section32Update)
	}
}

// BenchmarkE3_Compensation: the Section 3.3 failure path — continental
// autocommits, united fails, continental is compensated.
func BenchmarkE3_Compensation(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1, ContinentalAutoCommit: true})
	fed.Server("svc_unit").Faults().Add(ldbms.FaultRule{
		Op: ldbms.FaultExec, Database: "united", Sticky: true,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := mustScript(b, fed, experiments.Section33Update)
		last := results[len(results)-1]
		if last.State != core.StateAborted {
			b.Fatalf("state = %s", last.State)
		}
	}
}

// BenchmarkE4_Multitransaction: the travel-agent multitransaction; the
// reserved seat and car are freed again outside the timer.
func BenchmarkE4_Multitransaction(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1})
	reset := func() {
		for _, p := range []struct{ svc, db, sql string }{
			{"svc_cont", "continental", "UPDATE f838 SET seatstatus = 'FREE', clientname = NULL WHERE clientname = 'wenders'"},
			{"svc_natl", "national", "UPDATE vehicle SET vstat = 'FREE', client = NULL WHERE client = 'wenders'"},
		} {
			sess, err := fed.Server(p.svc).OpenSession(p.db)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Exec(p.sql); err != nil {
				b.Fatal(err)
			}
			if err := sess.Commit(); err != nil {
				b.Fatal(err)
			}
			sess.Close()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := mustScript(b, fed, experiments.Section34MultiTx)
		last := results[len(results)-1]
		if last.AchievedState == nil {
			b.Fatalf("multitransaction failed: status %d", last.Status)
		}
		b.StopTimer()
		reset()
		b.StartTimer()
	}
}

// BenchmarkE5_Translate: MSQL → DOL plan generation only (the Section 4.3
// listing), no execution.
func BenchmarkE5_Translate(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1})
	fed.DryRun = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, experiments.Section32Update)
	}
}

// BenchmarkF1_Pipeline: the full Figure 1 pipeline for the vital update.
func BenchmarkF1_Pipeline(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, experiments.Section32Update)
	}
}

// BenchmarkF2_Import: IMPORT DATABASE of a 64-table local conceptual
// schema into the GDD.
func BenchmarkF2_Import(b *testing.B) {
	srv := ldbms.NewServer("svc_big", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("big"); err != nil {
		b.Fatal(err)
	}
	sess, err := srv.OpenSession("big")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := sess.Exec(fmt.Sprintf("CREATE TABLE tab%d (id INTEGER, name CHAR(20), val FLOAT)", i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		b.Fatal(err)
	}
	sess.Close()

	fed := core.New()
	fed.RegisterClient("svc_big", lam.NewLocal(srv))
	mustScript(b, fed, "INCORPORATE SERVICE svc_big CONNECTMODE CONNECT COMMITMODE NOCOMMIT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, "IMPORT DATABASE big FROM SERVICE svc_big")
	}
}

// BenchmarkB1_Parallelism: the fan-out aggregate over 4 databases that the
// DOL engine runs concurrently (cmd/msqlbench prints the sequential
// comparison).
func BenchmarkB1_Parallelism(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("databases=%d", n), func(b *testing.B) {
			fed := mustDemo(b, demo.Options{Seed: 1, FlightRows: 500})
			script := "USE continental delta united\nSELECT COUNT(fl%), AVG(rate%) FROM flight% WHERE sour% = 'Houston'"
			if n == 2 {
				script = "USE continental delta\nSELECT COUNT(fl%), AVG(rate%) FROM flight% WHERE sour% = 'Houston'"
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustScript(b, fed, script)
			}
		})
	}
}

// BenchmarkB2_CommitModes: per-update cost by commit protocol over the
// TCP transport.
func BenchmarkB2_CommitModes(b *testing.B) {
	build := func(b *testing.B, p ldbms.Profile) (lam.Session, func()) {
		srv := ldbms.NewServer("b2", p, 1)
		if err := srv.CreateDatabase("db"); err != nil {
			b.Fatal(err)
		}
		boot, err := srv.OpenSession("db")
		if err != nil {
			b.Fatal(err)
		}
		boot.Exec("CREATE TABLE t (id INTEGER, val FLOAT)")
		boot.Exec("INSERT INTO t VALUES (1, 0.0)")
		boot.Commit()
		boot.Close()
		ts, err := lam.Serve("127.0.0.1:0", srv)
		if err != nil {
			b.Fatal(err)
		}
		client, err := lam.Dial(ts.Addr())
		if err != nil {
			b.Fatal(err)
		}
		sess, err := client.Open(context.Background(), "db")
		if err != nil {
			b.Fatal(err)
		}
		return sess, func() { sess.Close(); client.Close(); ts.Close() }
	}
	b.Run("autocommit", func(b *testing.B) {
		sess, cleanup := build(b, ldbms.ProfileAutoCommitOnly())
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(context.Background(), "UPDATE t SET val = val + 1 WHERE id = 1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("twopc", func(b *testing.B) {
		sess, cleanup := build(b, ldbms.ProfileOracleLike())
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(context.Background(), "UPDATE t SET val = val + 1 WHERE id = 1"); err != nil {
				b.Fatal(err)
			}
			if err := sess.Prepare(context.Background()); err != nil {
				b.Fatal(err)
			}
			if err := sess.Commit(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkB3_EarlyRelease: one update+commit cycle in each mode on a hot
// row (the contention comparison is in cmd/msqlbench).
func BenchmarkB3_EarlyRelease(b *testing.B) {
	srv := ldbms.NewServer("b3", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("db"); err != nil {
		b.Fatal(err)
	}
	boot, err := srv.OpenSession("db")
	if err != nil {
		b.Fatal(err)
	}
	boot.Exec("CREATE TABLE hot (id INTEGER, val FLOAT)")
	boot.Exec("INSERT INTO hot VALUES (1, 0.0)")
	boot.Commit()
	boot.Close()
	sess, err := srv.OpenSession("db")
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()

	b.Run("hold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess.Exec("UPDATE hot SET val = val + 1 WHERE id = 1")
			sess.Prepare()
			sess.Commit()
		}
	})
	b.Run("early", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess.Exec("UPDATE hot SET val = val + 1 WHERE id = 1")
			sess.Commit()
		}
	})
}

// BenchmarkB4_Substitution: multiple identifier expansion and plan
// generation for a pattern query over three databases.
func BenchmarkB4_Substitution(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1})
	fed.DryRun = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, "USE continental delta united\nSELECT COUNT(day) FROM flight%")
	}
}

// BenchmarkB5_Transport: exec round trip, in-process vs TCP.
func BenchmarkB5_Transport(b *testing.B) {
	srv := ldbms.NewServer("b5", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("db"); err != nil {
		b.Fatal(err)
	}
	boot, err := srv.OpenSession("db")
	if err != nil {
		b.Fatal(err)
	}
	boot.Exec("CREATE TABLE t (id INTEGER)")
	boot.Exec("INSERT INTO t VALUES (1), (2), (3)")
	boot.Commit()
	boot.Close()

	b.Run("inprocess", func(b *testing.B) {
		sess, err := lam.NewLocal(srv).Open(context.Background(), "db")
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(context.Background(), "SELECT id FROM t"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		ts, err := lam.Serve("127.0.0.1:0", srv)
		if err != nil {
			b.Fatal(err)
		}
		defer ts.Close()
		client, err := lam.Dial(ts.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		sess, err := client.Open(context.Background(), "db")
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(context.Background(), "SELECT id FROM t"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkB6_CrossJoin: the decomposed cross-database join with shipping
// to the coordinator.
func BenchmarkB6_CrossJoin(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1, FlightRows: 200})
	script := `USE continental united
SELECT COUNT(c.flnu) AS n FROM continental.flights c, united.flight u WHERE c.rate < u.rates`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustScript(b, fed, script)
	}
}

// BenchmarkB7_Consistency: the same multiple update at each consistency
// level (no VITAL / vital 2PC / compensated).
func BenchmarkB7_Consistency(b *testing.B) {
	variants := []struct {
		name, script string
		contAuto     bool
	}{
		{"nonvital", "USE continental delta united\nUPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'", false},
		{"vital2pc", experiments.Section32Update, false},
		{"compensated", experiments.Section33Update, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			fed := mustDemo(b, demo.Options{Seed: 1, ContinentalAutoCommit: v.contAuto})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustScript(b, fed, v.script)
			}
		})
	}
}

// BenchmarkB8_SyncGranularity: four vital updates per iteration, synced
// per statement vs once.
func BenchmarkB8_SyncGranularity(b *testing.B) {
	perStatement := "USE avis VITAL\n"
	oneUnit := "USE avis VITAL\n"
	for i := 0; i < 4; i++ {
		perStatement += "UPDATE cars SET rate = rate + 1 WHERE code = 1\nCOMMIT\n"
		oneUnit += "UPDATE cars SET rate = rate + 1 WHERE code = 1\n"
	}
	oneUnit += "COMMIT\n"
	for _, v := range []struct{ name, script string }{
		{"per-statement", perStatement},
		{"one-unit", oneUnit},
	} {
		b.Run(v.name, func(b *testing.B) {
			fed := mustDemo(b, demo.Options{Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustScript(b, fed, v.script)
			}
		})
	}
}

// BenchmarkB9_JoinOptimization: the cross-database equi-join at the
// coordinator with and without the hash-join optimization.
func BenchmarkB9_JoinOptimization(b *testing.B) {
	fed := mustDemo(b, demo.Options{Seed: 1, FlightRows: 150})
	script := `USE continental united
SELECT COUNT(c.flnu) AS n FROM continental.flights c, united.flight u WHERE c.flnu = u.fn`
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"hashjoin", false}, {"nestedloop", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sqlengine.DisableJoinOptimization = mode.disable
			defer func() { sqlengine.DisableJoinOptimization = false }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustScript(b, fed, script)
			}
		})
	}
}

// BenchmarkB3_Contention runs the contended early-release experiment (2
// workers, hot row, simulated global-transaction delay) once per
// iteration, in compensation mode.
func BenchmarkB3_Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.B3EarlyRelease(2, 2, 200*time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}
