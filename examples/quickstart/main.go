// Quickstart: build a two-database federation from scratch and run the
// paper's Section 2 multiple query, resolving naming heterogeneity (LET,
// %code) and schema heterogeneity (~rate) across the avis and national
// car-rental databases.
package main

import (
	"fmt"
	"log"

	"msql/internal/core"
	"msql/internal/ldbms"
)

func main() {
	fed := core.New()

	// 1. Stand up two autonomous local database systems. Avis runs on an
	// Oracle-like service (2PC, DDL rollback); National on a Sybase-like
	// single-database service.
	avis := fed.AddLocalService("svc_avis", ldbms.ProfileOracleLike(), 1)
	if err := avis.CreateDatabase("avis"); err != nil {
		log.Fatal(err)
	}
	mustExec(avis, "avis",
		`CREATE TABLE cars (code INTEGER, cartype CHAR(20), rate FLOAT, carst CHAR(12), client CHAR(20))`,
		`INSERT INTO cars VALUES
			(1, 'suv', 49.5, 'available', NULL),
			(2, 'compact', 29.5, 'rented', 'smith'),
			(3, 'luxury', 99.0, 'available', NULL)`,
	)

	national := fed.AddLocalService("svc_natl", ldbms.ProfileSybaseLike(), 1)
	if err := national.CreateDatabase("national"); err != nil {
		log.Fatal(err)
	}
	mustExec(national, "national",
		`CREATE TABLE vehicle (vcode INTEGER, vty CHAR(20), vstat CHAR(12), client CHAR(20))`,
		`INSERT INTO vehicle VALUES
			(11, 'sedan', 'available', NULL),
			(12, 'truck', 'rented', 'jones')`,
	)

	// 2. Incorporate the services into the federation and import their
	// local conceptual schemas into the Global Data Dictionary.
	_, err := fed.ExecScript(`
INCORPORATE SERVICE svc_avis CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_natl CONNECTMODE NOCONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE avis FROM SERVICE svc_avis;
IMPORT DATABASE national FROM SERVICE svc_natl;
`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The Section 2 multiple query: one compact MSQL statement that
	// fans out to both databases and returns a multitable.
	results, err := fed.ExecScript(`
USE avis national
LET car.type.status BE cars.cartype.carst
                       vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Kind != core.KindSelect || r.Multitable == nil {
			continue
		}
		fmt.Println("multitable (one table per database):")
		fmt.Println(r.Multitable.Format())
		flat, err := r.Multitable.Flatten()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("flattened:")
		fmt.Println(flat.Format())
	}
}

func mustExec(srv *ldbms.Server, db string, stmts ...string) {
	sess, err := srv.OpenSession(db)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	for _, q := range stmts {
		if _, err := sess.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	if err := sess.Commit(); err != nil {
		log.Fatal(err)
	}
}
