// Travelagent: the paper's Section 3.4 flexible multitransaction. A trip
// plan needs one flight (Continental or Delta — function replication) and
// one car (Avis or National). The COMMIT clause lists the acceptable
// termination states in preference order:
//
//	continental AND national   (preferred)
//	delta AND avis             (acceptable)
//
// All four reservations are attempted; the first reachable acceptable
// state is committed and everything outside it is rolled back. The
// example shows the preferred outcome, the fallback when National fails,
// and total failure when both car databases are down.
package main

import (
	"fmt"
	"log"
	"strings"

	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/ldbms"
)

const tripPlan = `
BEGIN MULTITRANSACTION
  USE continental delta
  LET fitab.snu.sstat.clname BE
      f838.seatnu.seatstatus.clientname
      fnu747.snu.sstat.passname
  UPDATE fitab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
      cars.code.carst
      vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'FREE');
  COMMIT
    continental AND national
    delta AND avis
END MULTITRANSACTION
`

func main() {
	fmt.Println("== all databases healthy: preferred state wins ==")
	run(nil)

	fmt.Println("\n== national down: fallback state delta AND avis ==")
	run(map[string]ldbms.FaultRule{
		"svc_natl": {Op: ldbms.FaultExec, Database: "national"},
	})

	fmt.Println("\n== both car databases down: trip planning fails, everything rolls back ==")
	run(map[string]ldbms.FaultRule{
		"svc_natl": {Op: ldbms.FaultExec, Database: "national"},
		"svc_avis": {Op: ldbms.FaultExec, Database: "avis"},
	})
}

func run(faults map[string]ldbms.FaultRule) {
	fed, err := demo.Build(demo.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	for svc, rule := range faults {
		fed.Server(svc).Faults().Add(rule)
	}
	results, err := fed.ExecScript(tripPlan)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Kind != core.KindMultiTx {
			continue
		}
		if r.AchievedState != nil {
			fmt.Printf("committed acceptable state %d: %s\n", r.Status, strings.Join(r.AchievedState, " AND "))
		} else {
			fmt.Printf("no acceptable state reachable (DOLSTATUS=%d): trip plan aborted\n", r.Status)
		}
		for _, name := range []string{"continental", "delta", "avis", "national"} {
			if st, ok := r.TaskStates[name]; ok {
				fmt.Printf("  %-12s %s\n", name, st)
			}
		}
	}
	// Inspect what each database recorded.
	probes := []struct{ svc, db, sql, label string }{
		{"svc_cont", "continental", "SELECT COUNT(*) FROM f838 WHERE clientname = 'wenders'", "continental seats for wenders"},
		{"svc_delta", "delta", "SELECT COUNT(*) FROM fnu747 WHERE passname = 'wenders'", "delta seats for wenders"},
		{"svc_avis", "avis", "SELECT COUNT(*) FROM cars WHERE client = 'wenders'", "avis cars for wenders"},
		{"svc_natl", "national", "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'", "national cars for wenders"},
	}
	for _, p := range probes {
		sess, err := fed.Server(p.svc).OpenSession(p.db)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Exec(p.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s %v\n", p.label, res.Rows[0][0])
		sess.Close()
	}
}
