// Extensions: the §2 language features implemented as multidatabase-level
// definitions — virtual databases (CREATE MULTIDATABASE), multidatabase
// views (CREATE MULTIVIEW), interdatabase triggers (CREATE TRIGGER) — and
// the COMMIT EFFECTIVE safeguard for racing reservations.
package main

import (
	"fmt"
	"log"
	"strings"

	"msql/internal/core"
	"msql/internal/demo"
)

func main() {
	fed, err := demo.Build(demo.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	show := func(title, script string) []*core.Result {
		fmt.Println("== " + title + " ==")
		results, err := fed.ExecScript(script)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		for _, r := range results {
			switch {
			case r.Kind == core.KindSelect && r.Multitable != nil:
				fmt.Print(r.Multitable.Format())
			case r.Kind == core.KindSync:
				fmt.Printf("sync: %s\n", r.State)
			case r.Kind == core.KindMultiTx:
				if r.AchievedState != nil {
					fmt.Printf("multitransaction: committed %s\n", strings.Join(r.AchievedState, " AND "))
				} else {
					fmt.Println("multitransaction: aborted (no acceptable state)")
				}
			}
			for _, trig := range r.TriggersFired {
				fmt.Printf("(trigger %s fired)\n", trig)
			}
		}
		fmt.Println()
		return results
	}

	// 1. Virtual databases: name the three airlines once, use everywhere.
	show("virtual database in USE", `
CREATE MULTIDATABASE airlines (continental, delta, united);
USE airlines
SELECT day FROM flight% WHERE sour% = 'Houston'
`)

	// 2. A multidatabase view over the car-rental federation.
	show("multidatabase view", `
USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
CREATE MULTIVIEW available_cars AS
SELECT %code, type, ~rate FROM car WHERE status = 'available';
SELECT * FROM available_cars
`)

	// 3. An interdatabase trigger: every committed fare change on delta
	// is mirrored into an audit table at avis.
	show("interdatabase trigger", `
USE avis
CREATE TABLE fare_audit (note CHAR(40));
CREATE TRIGGER fare_mirror ON delta AFTER UPDATE EXECUTE
INSERT INTO fare_audit (note) VALUES ('delta fares changed');
USE delta
UPDATE flight SET rate = rate * 1.05 WHERE source = 'Houston'
`)
	show("audit table after the trigger", `
USE avis
SELECT note FROM fare_audit
`)

	// 4. COMMIT EFFECTIVE: with no FREE national vehicle left, the
	// reservation matches zero rows; EFFECTIVE refuses the vacuous state.
	show("COMMIT EFFECTIVE refuses vacuous reservations", `
USE national
UPDATE vehicle SET vstat = 'TAKEN' WHERE vstat = 'FREE'
BEGIN MULTITRANSACTION
USE national
UPDATE vehicle SET client = 'wenders'
WHERE vcode = (SELECT MIN(vcode) FROM vehicle WHERE vstat = 'FREE')
COMMIT EFFECTIVE national
END MULTITRANSACTION
`)
}
