// Federation: a distributed deployment of the execution environment. Two
// LDBMSs are served over TCP by their Local Access Managers (as the
// Narada environment served Oracle and Ingres on the Houston campus
// network); the federation incorporates them by site address, imports
// their schemas over the wire, and executes a cross-database join whose
// partial results are shipped to a coordinator.
package main

import (
	"fmt"
	"log"

	"msql/internal/core"
	"msql/internal/lam"
	"msql/internal/ldbms"
)

func main() {
	// Remote site 1: continental on an Oracle-like server.
	cont := ldbms.NewServer("svc_cont", ldbms.ProfileOracleLike(), 1)
	mustCreate(cont, "continental",
		`CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), day CHAR(10), rate FLOAT)`,
		`INSERT INTO flights VALUES
			(100, 'Houston', 'San Antonio', 'mon', 100.0),
			(101, 'Houston', 'Dallas', 'tue', 80.0),
			(102, 'Austin', 'San Antonio', 'mon', 60.0)`,
	)
	contSrv, err := lam.Serve("127.0.0.1:0", cont)
	if err != nil {
		log.Fatal(err)
	}
	defer contSrv.Close()

	// Remote site 2: united on an Ingres-like server.
	united := ldbms.NewServer("svc_unit", ldbms.ProfileIngresLike(), 1)
	mustCreate(united, "united",
		`CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), day CHAR(10), rates FLOAT)`,
		`INSERT INTO flight VALUES
			(300, 'Houston', 'San Antonio', 'mon', 120.0),
			(301, 'Houston', 'Austin', 'fri', 70.0)`,
	)
	unitSrv, err := lam.Serve("127.0.0.1:0", united)
	if err != nil {
		log.Fatal(err)
	}
	defer unitSrv.Close()

	fmt.Printf("LAMs listening: continental at %s, united at %s\n\n", contSrv.Addr(), unitSrv.Addr())

	// The federation knows the services only by their TCP sites.
	fed := core.New()
	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_cont SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE COMMIT DROP COMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, contSrv.Addr(), unitSrv.Addr())
	if _, err := fed.ExecScript(setup); err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported GDD databases:", fed.GDD.DatabaseNames())

	// A multiple query over the wire.
	results, err := fed.ExecScript(`
USE continental united
SELECT fl% FROM flight% WHERE day = 'mon'
`)
	if err != nil {
		log.Fatal(err)
	}
	printSelects(results)

	// A cross-database join: continental's partial result and united's
	// partial result are shipped to the coordinator, which evaluates the
	// modified global query.
	results, err = fed.ExecScript(`
USE continental united
SELECT c.flnu, u.fn, c.rate, u.rates
FROM continental.flights c, united.flight u
WHERE c.day = u.day AND c.rate < u.rates
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-database join (shipped to coordinator):")
	printSelects(results)
}

func printSelects(results []*core.Result) {
	for _, r := range results {
		if r.Kind == core.KindSelect && r.Multitable != nil {
			fmt.Println(r.Multitable.Format())
		}
		for _, s := range r.Skipped {
			fmt.Printf("  (skipped %s: %s)\n", s.Entry.Name, s.Reason)
		}
	}
}

func mustCreate(srv *ldbms.Server, db string, stmts ...string) {
	if err := srv.CreateDatabase(db); err != nil {
		log.Fatal(err)
	}
	sess, err := srv.OpenSession(db)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	for _, q := range stmts {
		if _, err := sess.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	if err := sess.Commit(); err != nil {
		log.Fatal(err)
	}
}
