// Fareupdate: the paper's Section 3.2/3.3 scenario. A multiple update
// raises the Houston → San Antonio fares in three airline databases with
// different commit capabilities. VITAL designators make continental and
// united atomic as a set while delta stays best-effort; when continental
// sits on an autocommit-only service, a COMP clause supplies the
// compensating action and the example walks all four execution paths of
// Section 3.3 under injected failures.
package main

import (
	"fmt"
	"log"

	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/ldbms"
)

const vitalUpdate = `
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`

const compensatedUpdate = vitalUpdate + `
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
`

func main() {
	fmt.Println("== §3.2: vital update, all services healthy ==")
	run(false, nil, vitalUpdate)

	fmt.Println("\n== §3.2: united fails — the whole vital set rolls back, delta (NON VITAL) stands ==")
	run(false, map[string]ldbms.FaultRule{
		"svc_unit": {Op: ldbms.FaultExec, Database: "united"},
	}, vitalUpdate)

	fmt.Println("\n== §3.3 path 1: continental autocommits, united prepares — success ==")
	run(true, nil, compensatedUpdate)

	fmt.Println("\n== §3.3 path 2: continental committed, united aborted — compensate continental ==")
	run(true, map[string]ldbms.FaultRule{
		"svc_unit": {Op: ldbms.FaultExec, Database: "united"},
	}, compensatedUpdate)

	fmt.Println("\n== §3.3 path 3: continental aborted, united prepared — roll united back ==")
	run(true, map[string]ldbms.FaultRule{
		"svc_cont": {Op: ldbms.FaultExec, Database: "continental"},
	}, compensatedUpdate)

	fmt.Println("\n== §3.3 path 4: both aborted ==")
	run(true, map[string]ldbms.FaultRule{
		"svc_cont": {Op: ldbms.FaultExec, Database: "continental"},
		"svc_unit": {Op: ldbms.FaultExec, Database: "united"},
	}, compensatedUpdate)
}

func run(contAutoCommit bool, faults map[string]ldbms.FaultRule, script string) {
	fed, err := demo.Build(demo.Options{ContinentalAutoCommit: contAutoCommit, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for svc, rule := range faults {
		fed.Server(svc).Faults().Add(rule)
	}
	results, err := fed.ExecScript(script)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Kind != core.KindSync {
			continue
		}
		fmt.Printf("global state: %-9s DOLSTATUS=%d\n", r.State, r.Status)
		for _, name := range []string{"continental", "delta", "united"} {
			if st, ok := r.TaskStates[name]; ok {
				fmt.Printf("  %-12s %-10s %d row(s)\n", name, st, r.RowsAffected[name])
			}
		}
		for _, c := range r.Compensated {
			fmt.Printf("  %-12s compensated\n", c)
		}
	}
	// Show the fares each airline ended up with.
	for _, probe := range []struct{ svc, db, sql string }{
		{"svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"},
		{"svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 200"},
		{"svc_unit", "united", "SELECT rates FROM flight WHERE fn = 300"},
	} {
		sess, err := fed.Server(probe.svc).OpenSession(probe.db)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Exec(probe.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s fare now %v\n", probe.db, res.Rows[0][0])
		sess.Close()
	}
}
