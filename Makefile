.PHONY: build test bench check lint-metrics

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# Full verification: static analysis plus the whole test suite under the
# race detector (the fault-injection tests are concurrency-heavy).
check:
	go vet ./...
	go test -race ./...

# Every registered metric must be msql_-prefixed snake_case and
# documented in DESIGN.md's metric inventory.
lint-metrics:
	sh scripts/lint-metrics.sh
