.PHONY: build test bench check

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# Full verification: static analysis plus the whole test suite under the
# race detector (the fault-injection tests are concurrency-heavy).
check:
	go vet ./...
	go test -race ./...
