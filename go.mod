module msql

go 1.22
